//! The PF+=2 policy compiler: an allocation-free fast path for flow setup.
//!
//! The interpreter in [`crate::eval`] walks the AST for every flow: it
//! re-resolves named ports, chases nested table references with a cycle
//! guard, and allocates a fresh `String` for every predicate argument. That
//! cost sits on the controller's *per-flow* critical path (§3.4 of the paper
//! puts query + evaluation + install on every flow setup), so this module
//! compiles a parsed [`RuleSet`] once into a [`CompiledPolicy`]:
//!
//! * named ports are pre-resolved to `u16`,
//! * table trees are flattened into sorted host/CIDR sets answered by binary
//!   search (no recursion, no cycle guard at evaluation time),
//! * string literals, macro values, and dict lookups are interned into a
//!   symbol table so predicates compare borrowed `&str`s instead of
//!   allocating,
//! * rules are truncated at an unconditional `quick` rule, floored below a
//!   superseding unconditional rule, and indexed into the field-indexed
//!   matcher tree of [`crate::matcher`] so evaluation only examines the
//!   rules that *could* match a flow — decision cost tracks candidate
//!   count, not policy size.
//!
//! The compiled evaluator is **decision-equivalent** to the interpreter —
//! `tests/compiled_equivalence.rs` proves it by property test against the
//! interpreter as the reference oracle. The interpreter remains in use for
//! `allowed()` sub-rule sets, which arrive at evaluation time inside
//! responses and therefore cannot be compiled ahead of time.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use identxx_crypto::{verify_bundle_hex_at, KeyRegistry, VerifyCache};
use identxx_proto::{FiveTuple, IpProtocol, Ipv4Addr, Response};

use crate::ast::{Action, AddrSpec, Endpoint, FnArg, FnCall, PortSpec, Rule, RuleSet};
use crate::eval::{Decision, EvalContext, EvalCore, Verdict, MAX_ALLOWED_DEPTH};
use crate::functions::{list_items, numeric_cmp, FunctionRegistry};
use crate::matcher::{FieldSet, MatcherStats, MatcherTree, Merge, UnmatchableReason};
use crate::services::resolve_port;
use crate::table::{Table, TableEntry};

/// An interned string id. Comparing two symbols interned from the same
/// [`CompiledPolicy`] is an integer compare; resolving one is an index.
pub type Sym = u32;

/// The policy-wide string interner.
#[derive(Debug, Default)]
pub(crate) struct SymbolTable {
    strings: Vec<String>,
    index: HashMap<String, Sym>,
}

impl SymbolTable {
    fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.index.get(s) {
            return sym;
        }
        let sym = self.strings.len() as Sym;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), sym);
        sym
    }

    pub(crate) fn get(&self, sym: Sym) -> &str {
        &self.strings[sym as usize]
    }
}

/// A flattened address set: every host and network reachable from a table,
/// nested references already resolved.
///
/// Hosts are a sorted `u32` vector (binary search). Networks are grouped by
/// mask; within a group the masked network addresses are sorted, so a lookup
/// is one mask + binary search per distinct prefix length (≤ 33).
#[derive(Debug, Default)]
pub(crate) struct FlatSet {
    hosts: Vec<u32>,
    cidrs: Vec<(u32, Vec<u32>)>,
}

impl FlatSet {
    pub(crate) fn contains(&self, addr: u32) -> bool {
        if self.hosts.binary_search(&addr).is_ok() {
            return true;
        }
        self.cidrs
            .iter()
            .any(|(mask, nets)| nets.binary_search(&(addr & mask)).is_ok())
    }

    /// Whether the set contains no host and no network at all. An endpoint
    /// constrained (non-negated) to an empty set can never match.
    pub(crate) fn is_empty(&self) -> bool {
        self.hosts.is_empty() && self.cidrs.iter().all(|(_, nets)| nets.is_empty())
    }
}

/// Mask for a prefix length, mirroring `Ipv4Addr::in_prefix` exactly
/// (lengths above 32 behave as 32; 0 matches everything).
fn prefix_mask(prefix_len: u8) -> u32 {
    match prefix_len.min(32) {
        0 => 0,
        32 => u32::MAX,
        n => !(u32::MAX >> n),
    }
}

/// Flattens a table (following nested references, each table visited once)
/// into a [`FlatSet`]. Missing referenced tables are treated as empty, as the
/// interpreter does.
fn flatten_table(root: &Table, all: &BTreeMap<String, Table>) -> FlatSet {
    let mut hosts: Vec<u32> = Vec::new();
    let mut by_mask: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    root.visit_flattened(all, |entry| match entry {
        TableEntry::Host(h) => hosts.push(h.to_u32()),
        TableEntry::Cidr {
            network,
            prefix_len,
        } => {
            let mask = prefix_mask(*prefix_len);
            by_mask
                .entry(mask)
                .or_default()
                .push(network.to_u32() & mask);
        }
        TableEntry::TableRef(_) => {}
    });
    hosts.sort_unstable();
    hosts.dedup();
    let cidrs = by_mask
        .into_iter()
        .map(|(mask, mut nets)| {
            nets.sort_unstable();
            nets.dedup();
            (mask, nets)
        })
        .collect();
    FlatSet { hosts, cidrs }
}

/// A compiled address specification.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CAddr {
    Any,
    Host(u32),
    Cidr {
        net: u32,
        mask: u32,
    },
    /// Index into [`CompiledPolicy::sets`].
    Set(usize),
}

/// A compiled port constraint. Named services are resolved at compile time;
/// an unresolvable name can never match (fail closed, as the interpreter).
#[derive(Debug, Clone, Copy)]
pub(crate) enum CPort {
    Any,
    Eq(u16),
    Range(u16, u16),
    Never,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct CEndpoint {
    pub(crate) negate: bool,
    pub(crate) addr: CAddr,
    pub(crate) port: CPort,
}

/// Which response a `@src[..]`/`@dst[..]` reference reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Side {
    Src,
    Dst,
}

/// How many distinct `(side, key)` response references are memoized per
/// evaluation in a stack-allocated cache. Policies referencing more distinct
/// keys stay correct — the overflow references just resolve on every use.
const RESP_SLOTS: usize = 16;

/// Slot id meaning "not memoized".
const NO_SLOT: u16 = u16::MAX;

/// A compiled predicate argument. Macro references and user-dict lookups are
/// resolved at compile time (the rule set is immutable once compiled), so at
/// evaluation time only response lookups remain dynamic.
#[derive(Debug, Clone)]
pub(crate) enum CArg {
    /// A literal / macro value / dict value, interned.
    Lit(Sym),
    /// An undefined macro or dict reference: always resolves to "absent".
    Missing,
    /// `@src[key]` / `@dst[key]` (or the `*`-concatenated forms). `slot`
    /// memoizes the `latest(key)` lookup across a whole evaluation: a
    /// 1000-rule policy referencing `@src[name]` walks the response once,
    /// not a thousand times.
    Resp {
        side: Side,
        key: Sym,
        concat: bool,
        slot: u16,
    },
}

/// The list argument of `member`, pre-resolved where possible.
#[derive(Debug, Clone)]
pub(crate) enum CList {
    /// Named list, macro list, table rendering, or literal — fully known at
    /// compile time.
    Static(Vec<String>),
    /// A response reference whose value is split at evaluation time.
    Dynamic(CArg),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpOp {
    Eq,
    Ne,
    Gt,
    Lt,
    Gte,
    Lte,
}

/// A compiled `with` predicate.
#[derive(Debug, Clone)]
pub(crate) enum CPred {
    /// `eq(@resp[key], literal)` — the overwhelmingly common predicate shape
    /// (every application rule in the paper's figures) — specialised to one
    /// memoized lookup and one string compare.
    EqRespLit {
        side: Side,
        key: Sym,
        slot: u16,
        lit: Sym,
    },
    Cmp {
        op: CmpOp,
        a: CArg,
        b: CArg,
    },
    Exists(CArg),
    Member {
        value: CArg,
        list: CList,
    },
    Includes {
        haystack: CArg,
        needle: CArg,
    },
    Allowed(CArg),
    Verify {
        sig: CArg,
        key: CArg,
        data: Vec<CArg>,
    },
    User {
        name: Sym,
        args: Vec<CArg>,
    },
    /// Unknown function or wrong arity: fails closed.
    Never,
}

/// A compiled rule.
#[derive(Debug)]
pub(crate) struct CRule {
    /// Index into the source `RuleSet::rules` (reported in verdicts).
    index: usize,
    line: usize,
    action: Action,
    quick: bool,
    keep_state: bool,
    /// The `proto` constraint, checked per-rule now that the matcher tree
    /// mixes protocols inside one candidate list.
    pub(crate) proto: Option<IpProtocol>,
    pub(crate) from: Option<CEndpoint>,
    pub(crate) to: Option<CEndpoint>,
    pub(crate) preds: Vec<CPred>,
}

/// Builder for [`CompiledPolicy`], mirroring [`EvalContext`]'s configuration
/// surface. Everything attached here is baked into the compiled form, so
/// attach named lists / keys / functions *before* calling [`compile`].
///
/// [`compile`]: PolicyCompiler::compile
#[derive(Default)]
pub struct PolicyCompiler {
    core: EvalCore,
}

impl PolicyCompiler {
    /// Creates a compiler with the interpreter's defaults (default decision
    /// `Pass`, empty registries).
    pub fn new() -> Self {
        PolicyCompiler::default()
    }

    /// Sets the decision applied when no rule matches.
    pub fn with_default(mut self, default: Decision) -> Self {
        self.core.default_decision = default;
        self
    }

    /// Attaches trusted public keys for `verify`.
    pub fn with_key_registry(mut self, registry: KeyRegistry) -> Self {
        self.core.key_registry = registry;
        self
    }

    /// Defines a named list usable as the second argument of `member`.
    pub fn with_named_list(mut self, name: impl Into<String>, members: Vec<String>) -> Self {
        self.core.named_lists.insert(name.into(), members);
        self
    }

    /// Attaches user-defined functions.
    pub fn with_functions(mut self, functions: FunctionRegistry) -> Self {
        self.core.functions = functions;
        self
    }

    /// Attaches a shared verification cache: `verify()` verdicts are then
    /// amortized by bundle content hash across every evaluation of the
    /// compiled policy (and the interpreter contexts it spawns for
    /// `allowed()`).
    pub fn with_verify_cache(mut self, cache: Arc<VerifyCache>) -> Self {
        self.core.verify_cache = Some(cache);
        self
    }

    /// Compiles `ruleset` into its evaluation-ready form.
    pub fn compile(self, ruleset: &RuleSet) -> CompiledPolicy {
        Compilation {
            ruleset,
            core: Arc::new(self.core),
            symbols: SymbolTable::default(),
            sets: Vec::new(),
            set_index: HashMap::new(),
            resp_slots: HashMap::new(),
        }
        .run()
    }
}

/// Transient state while lowering a rule set.
struct Compilation<'a> {
    ruleset: &'a RuleSet,
    core: Arc<EvalCore>,
    symbols: SymbolTable,
    sets: Vec<FlatSet>,
    set_index: HashMap<String, usize>,
    resp_slots: HashMap<(Side, Sym), u16>,
}

impl<'a> Compilation<'a> {
    fn run(mut self) -> CompiledPolicy {
        // An unconditional `quick` rule ends every evaluation: rules after it
        // are unreachable and are dropped from the compiled form entirely.
        let mut rules: Vec<CRule> = Vec::new();
        for (index, rule) in self.ruleset.rules.iter().enumerate() {
            rules.push(self.compile_rule(index, rule));
            if rule.quick && rule_is_unconditional(rule) {
                break;
            }
        }

        // Dually, rules *before* an unconditional non-quick rule can never
        // decide a flow (the unconditional rule always matches later under
        // last-match-wins) — as long as no quick rule precedes it. Skip them.
        let mut floor = 0;
        for (pos, crule) in rules.iter().enumerate() {
            let source = &self.ruleset.rules[crule.index];
            if source.quick {
                break;
            }
            if rule_is_unconditional(source) {
                floor = pos;
            }
        }

        // Record every eliminated rule so the drop is observable (audit log,
        // `pfcheck`) instead of silent.
        let mut dead: Vec<DeadRule> = Vec::new();
        for crule in &rules[..floor] {
            let superseding = rules[floor].index;
            dead.push(DeadRule {
                index: crule.index,
                line: self.ruleset.rules[crule.index].line,
                reason: DeadRuleReason::SupersededByUnconditional {
                    index: superseding,
                    line: self.ruleset.rules[superseding].line,
                },
            });
        }
        if rules.len() < self.ruleset.rules.len() {
            let quick_index = rules[rules.len() - 1].index;
            let quick_line = self.ruleset.rules[quick_index].line;
            for (index, rule) in self.ruleset.rules.iter().enumerate().skip(rules.len()) {
                dead.push(DeadRule {
                    index,
                    line: rule.line,
                    reason: DeadRuleReason::AfterUnconditionalQuick {
                        index: quick_index,
                        line: quick_line,
                    },
                });
            }
        }

        // Index the live rules into the field-indexed matcher tree. Rules
        // the tree proves unmatchable (unreachable leaves) join the dead-rule
        // report with their reason.
        let tree = MatcherTree::build(&rules, floor, &self.sets, &self.symbols);
        for &(pos, reason) in tree.unreachable() {
            let crule = &rules[pos as usize];
            dead.push(DeadRule {
                index: crule.index,
                line: crule.line,
                reason: DeadRuleReason::Unmatchable {
                    line: crule.line,
                    reason,
                },
            });
        }
        dead.sort_by_key(|d| d.index);

        CompiledPolicy {
            symbols: self.symbols,
            sets: self.sets,
            rules,
            floor,
            tree,
            core: self.core,
            source_rules: self.ruleset.rules.len(),
            dead,
        }
    }

    fn compile_rule(&mut self, index: usize, rule: &Rule) -> CRule {
        // An endpoint that matches every address and port (e.g. the `all`
        // keyword's `any`) is compiled away entirely.
        fn simplify(endpoint: Option<CEndpoint>) -> Option<CEndpoint> {
            endpoint.filter(|e| {
                e.negate || !matches!(e.addr, CAddr::Any) || !matches!(e.port, CPort::Any)
            })
        }
        let from = simplify(rule.from.as_ref().map(|e| self.compile_endpoint(e)));
        let to = simplify(rule.to.as_ref().map(|e| self.compile_endpoint(e)));
        CRule {
            index,
            line: rule.line,
            action: rule.action,
            quick: rule.quick,
            keep_state: rule.keep_state,
            proto: rule.proto,
            from,
            to,
            preds: rule.withs.iter().map(|c| self.compile_call(c)).collect(),
        }
    }

    fn compile_endpoint(&mut self, endpoint: &Endpoint) -> CEndpoint {
        let addr = match &endpoint.addr {
            AddrSpec::Any => CAddr::Any,
            AddrSpec::Host(h) => CAddr::Host(h.to_u32()),
            AddrSpec::Cidr {
                network,
                prefix_len,
            } => {
                let mask = prefix_mask(*prefix_len);
                CAddr::Cidr {
                    net: network.to_u32() & mask,
                    mask,
                }
            }
            AddrSpec::Table(name) => CAddr::Set(self.set_for(name)),
        };
        let port = match &endpoint.port {
            None => CPort::Any,
            Some(PortSpec::Number(p)) => CPort::Eq(*p),
            Some(PortSpec::Range(lo, hi)) => CPort::Range(*lo, *hi),
            Some(PortSpec::Named(name)) => match resolve_port(name) {
                Some(p) => CPort::Eq(p),
                None => CPort::Never,
            },
        };
        CEndpoint {
            negate: endpoint.negate,
            addr,
            port,
        }
    }

    /// Flattens (once) and returns the set index for a table name. An unknown
    /// table compiles to an empty set — never matches, as in the interpreter.
    fn set_for(&mut self, name: &str) -> usize {
        if let Some(&idx) = self.set_index.get(name) {
            return idx;
        }
        let set = match self.ruleset.tables.get(name) {
            Some(table) => flatten_table(table, &self.ruleset.tables),
            None => FlatSet::default(),
        };
        let idx = self.sets.len();
        self.sets.push(set);
        self.set_index.insert(name.to_string(), idx);
        idx
    }

    /// Assigns (or reuses) a memoization slot for a `(side, key)` response
    /// reference; references beyond the stack cache's capacity get
    /// [`NO_SLOT`] and resolve uncached.
    fn slot_for(&mut self, side: Side, key: Sym) -> u16 {
        if let Some(&slot) = self.resp_slots.get(&(side, key)) {
            return slot;
        }
        let slot = if self.resp_slots.len() < RESP_SLOTS {
            self.resp_slots.len() as u16
        } else {
            NO_SLOT
        };
        self.resp_slots.insert((side, key), slot);
        slot
    }

    fn compile_arg(&mut self, arg: &FnArg) -> CArg {
        match arg {
            FnArg::Literal(text) => CArg::Lit(self.symbols.intern(text)),
            FnArg::MacroRef(name) => match self.ruleset.macros.get(name) {
                Some(value) => CArg::Lit(self.symbols.intern(value)),
                None => CArg::Missing,
            },
            FnArg::DictRef { concat, dict, key } => match dict.as_str() {
                side @ ("src" | "dst") => {
                    let side = if side == "src" { Side::Src } else { Side::Dst };
                    let key = self.symbols.intern(key);
                    CArg::Resp {
                        side,
                        key,
                        concat: *concat,
                        slot: self.slot_for(side, key),
                    }
                }
                other => match self.ruleset.dicts.get(other).and_then(|d| d.get(key)) {
                    Some(value) => CArg::Lit(self.symbols.intern(value)),
                    None => CArg::Missing,
                },
            },
        }
    }

    /// Compiles the list argument of `member`, mirroring the interpreter's
    /// resolution order (named list, macro, table rendering, literal split).
    fn compile_list(&mut self, arg: &FnArg) -> CList {
        if let FnArg::Literal(name) = arg {
            if let Some(list) = self.core.named_lists.get(name) {
                return CList::Static(list.clone());
            }
            if let Some(macro_text) = self.ruleset.macros.get(name) {
                return CList::Static(list_items(macro_text).map(str::to_string).collect());
            }
            if let Some(table) = self.ruleset.tables.get(name) {
                return CList::Static(table.entries().iter().map(|e| format!("{e:?}")).collect());
            }
        }
        match self.compile_arg(arg) {
            CArg::Lit(sym) => CList::Static(
                list_items(self.symbols.get(sym))
                    .map(str::to_string)
                    .collect(),
            ),
            CArg::Missing => CList::Static(Vec::new()),
            dynamic @ CArg::Resp { .. } => CList::Dynamic(dynamic),
        }
    }

    fn compile_call(&mut self, call: &FnCall) -> CPred {
        let args = &call.args;
        match call.name.as_str() {
            "eq" | "ne" | "gt" | "lt" | "gte" | "lte" => {
                if args.len() != 2 {
                    return CPred::Never;
                }
                let op = match call.name.as_str() {
                    "eq" => CmpOp::Eq,
                    "ne" => CmpOp::Ne,
                    "gt" => CmpOp::Gt,
                    "lt" => CmpOp::Lt,
                    "gte" => CmpOp::Gte,
                    _ => CmpOp::Lte,
                };
                let a = self.compile_arg(&args[0]);
                let b = self.compile_arg(&args[1]);
                if op == CmpOp::Eq {
                    // eq is symmetric: specialise both argument orders.
                    let pair = match (&a, &b) {
                        (
                            CArg::Resp {
                                side,
                                key,
                                concat: false,
                                slot,
                            },
                            CArg::Lit(lit),
                        )
                        | (
                            CArg::Lit(lit),
                            CArg::Resp {
                                side,
                                key,
                                concat: false,
                                slot,
                            },
                        ) => Some((*side, *key, *slot, *lit)),
                        _ => None,
                    };
                    if let Some((side, key, slot, lit)) = pair {
                        return CPred::EqRespLit {
                            side,
                            key,
                            slot,
                            lit,
                        };
                    }
                }
                CPred::Cmp { op, a, b }
            }
            "exists" => {
                if args.len() != 1 {
                    return CPred::Never;
                }
                CPred::Exists(self.compile_arg(&args[0]))
            }
            "member" => {
                if args.len() != 2 {
                    return CPred::Never;
                }
                CPred::Member {
                    value: self.compile_arg(&args[0]),
                    list: self.compile_list(&args[1]),
                }
            }
            "includes" => {
                if args.len() != 2 {
                    return CPred::Never;
                }
                CPred::Includes {
                    haystack: self.compile_arg(&args[0]),
                    needle: self.compile_arg(&args[1]),
                }
            }
            "allowed" => {
                if args.len() != 1 {
                    return CPred::Never;
                }
                CPred::Allowed(self.compile_arg(&args[0]))
            }
            "verify" => {
                if args.len() < 3 {
                    return CPred::Never;
                }
                CPred::Verify {
                    sig: self.compile_arg(&args[0]),
                    key: self.compile_arg(&args[1]),
                    data: args[2..].iter().map(|a| self.compile_arg(a)).collect(),
                }
            }
            other => {
                if self.core.functions.get(other).is_some() {
                    CPred::User {
                        name: self.symbols.intern(other),
                        args: args.iter().map(|a| self.compile_arg(a)).collect(),
                    }
                } else {
                    // Unknown functions fail closed, exactly as the
                    // interpreter treats an administrator typo.
                    CPred::Never
                }
            }
        }
    }
}

/// Whether a rule matches every flow regardless of headers and responses.
fn rule_is_unconditional(rule: &Rule) -> bool {
    fn ep_any(ep: &Option<Endpoint>) -> bool {
        match ep {
            None => true,
            Some(e) => !e.negate && e.addr == AddrSpec::Any && e.port.is_none(),
        }
    }
    rule.proto.is_none() && rule.withs.is_empty() && ep_any(&rule.from) && ep_any(&rule.to)
}

/// Why dead-rule elimination removed a source rule from the compiled policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadRuleReason {
    /// An earlier unconditional `quick` rule decides every flow before this
    /// rule is reached.
    AfterUnconditionalQuick {
        /// Source index of the unconditional `quick` rule.
        index: usize,
        /// Source line of that rule.
        line: usize,
    },
    /// A later unconditional non-`quick` rule always matches afterwards, so
    /// under last-match-wins this rule can never be the deciding match.
    SupersededByUnconditional {
        /// Source index of the unconditional rule.
        index: usize,
        /// Source line of that rule.
        line: usize,
    },
    /// The matcher tree proved the rule can match no flow at all — an
    /// unreachable tree leaf (unresolvable named port, inverted port range,
    /// or a non-negated endpoint over an empty address set). The blame is the
    /// rule itself.
    Unmatchable {
        /// Source line of the unmatchable rule (the blame is self-directed).
        line: usize,
        /// What makes it unmatchable.
        reason: UnmatchableReason,
    },
}

impl DeadRuleReason {
    /// Source index of the rule responsible for the elimination. For
    /// [`DeadRuleReason::Unmatchable`] this is the dead rule itself — no
    /// other rule is involved — so callers pairing this with a [`DeadRule`]
    /// should prefer the dead rule's own index there.
    pub fn blamed_index(&self) -> Option<usize> {
        match self {
            DeadRuleReason::AfterUnconditionalQuick { index, .. }
            | DeadRuleReason::SupersededByUnconditional { index, .. } => Some(*index),
            DeadRuleReason::Unmatchable { .. } => None,
        }
    }

    /// Source line of the rule responsible for the elimination.
    pub fn blamed_line(&self) -> usize {
        match self {
            DeadRuleReason::AfterUnconditionalQuick { line, .. }
            | DeadRuleReason::SupersededByUnconditional { line, .. }
            | DeadRuleReason::Unmatchable { line, .. } => *line,
        }
    }
}

impl std::fmt::Display for DeadRuleReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeadRuleReason::AfterUnconditionalQuick { index, line } => write!(
                f,
                "unreachable: the unconditional quick rule #{index} (line {line}) decides every flow first"
            ),
            DeadRuleReason::SupersededByUnconditional { index, line } => write!(
                f,
                "never decides: the unconditional rule #{index} (line {line}) always matches later (last match wins)"
            ),
            DeadRuleReason::Unmatchable { reason, .. } => {
                write!(f, "unmatchable: the rule has {reason}, so no flow can satisfy it")
            }
        }
    }
}

/// A source rule that dead-rule elimination removed (it can never decide a
/// flow). Reported so administrators see *which* rules were dropped, not just
/// a count — the static analyzer ([`mod@crate::analyze`]) and the compiler agree
/// on this set by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadRule {
    /// Index of the dropped rule in the source rule set.
    pub index: usize,
    /// Source line of the dropped rule.
    pub line: usize,
    /// Why it can never decide a flow.
    pub reason: DeadRuleReason,
}

/// A rule set lowered into its evaluation-ready form. Build one with
/// [`CompiledPolicy::compile`] or, when keys / named lists / user functions /
/// a non-default decision are involved, via [`PolicyCompiler`].
pub struct CompiledPolicy {
    symbols: SymbolTable,
    sets: Vec<FlatSet>,
    rules: Vec<CRule>,
    /// First rule position that can still decide a flow (everything below is
    /// the dead prefix superseded by an unconditional rule).
    floor: usize,
    /// The field-indexed matcher tree over `rules[floor..]`.
    tree: MatcherTree,
    core: Arc<EvalCore>,
    source_rules: usize,
    /// Source rules removed by dead-rule elimination, with the reason each
    /// can never decide a flow.
    dead: Vec<DeadRule>,
}

impl CompiledPolicy {
    /// Compiles a rule set with default configuration (default decision
    /// `Pass`, no keys / lists / user functions).
    pub fn compile(ruleset: &RuleSet) -> CompiledPolicy {
        PolicyCompiler::new().compile(ruleset)
    }

    /// Number of rules in the source rule set.
    pub fn source_rule_count(&self) -> usize {
        self.source_rules
    }

    /// Number of rules retained after dead-rule elimination.
    pub fn compiled_rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The source rules dead-rule elimination removed, with reasons. Empty
    /// when every source rule can still decide some flow.
    pub fn dead_rules(&self) -> &[DeadRule] {
        &self.dead
    }

    /// Number of internal evaluator faults recorded by this policy's
    /// evaluations (impossible lowering states that failed closed instead of
    /// panicking). Nonzero values indicate a compiler bug worth reporting.
    pub fn internal_error_count(&self) -> u64 {
        self.core.internal_error_count()
    }

    /// How many times `allowed()` actually invoked the parser on a delegated
    /// requirement string (repeats are served from the shared memo).
    pub fn requirements_parsed(&self) -> u64 {
        self.core.requirements.parse_count()
    }

    /// Evaluates the policy for `flow` against optional src/dst responses at
    /// logical time zero (unwindowed bundles only; windowed bundles need
    /// [`CompiledPolicy::evaluate_at`]).
    ///
    /// Decision-equivalent to [`EvalContext::evaluate`] over the same rule
    /// set and configuration. `Verdict::rules_evaluated` counts *candidate*
    /// rules examined, which is the quantity the compiled form optimises and
    /// may be lower than the interpreter's count.
    pub fn evaluate(
        &self,
        flow: &FiveTuple,
        src: Option<&Response>,
        dst: Option<&Response>,
    ) -> Verdict {
        self.evaluate_at(flow, src, dst, 0)
    }

    /// Evaluates at logical time `now` (microseconds). `now` only affects
    /// `verify()` of short-lived bundles, whose validity window is checked
    /// against it.
    pub fn evaluate_at(
        &self,
        flow: &FiveTuple,
        src: Option<&Response>,
        dst: Option<&Response>,
        now: u64,
    ) -> Verdict {
        EvalRun {
            policy: self,
            src,
            dst,
            now,
            slots: [None; RESP_SLOTS],
        }
        .evaluate(flow)
    }

    /// Evaluates without the matcher tree: a plain ordered scan over the live
    /// rules. Decision-identical to [`CompiledPolicy::evaluate`] (the
    /// three-way equivalence proptest pins all three paths together); kept as
    /// the reference implementation and as the "linear compiled" series in
    /// the E8a scaling benchmark.
    pub fn evaluate_linear(
        &self,
        flow: &FiveTuple,
        src: Option<&Response>,
        dst: Option<&Response>,
    ) -> Verdict {
        self.evaluate_linear_at(flow, src, dst, 0)
    }

    /// [`CompiledPolicy::evaluate_linear`] at logical time `now`.
    pub fn evaluate_linear_at(
        &self,
        flow: &FiveTuple,
        src: Option<&Response>,
        dst: Option<&Response>,
        now: u64,
    ) -> Verdict {
        EvalRun {
            policy: self,
            src,
            dst,
            now,
            slots: [None; RESP_SLOTS],
        }
        .evaluate_linear(flow)
    }

    /// The flow/response fields rule `source_index` inspects while matching,
    /// or `None` if the rule was eliminated before indexing (truncated after
    /// an unconditional `quick` rule). A cached verdict for this rule is safe
    /// to replay exactly across flows agreeing on every returned field — this
    /// is the work-list for per-rule cache granularity, and what
    /// `pfcheck --granularity` uses to blame the precise field that makes a
    /// coarse cache key unsafe.
    pub fn fields_inspected(&self, source_index: usize) -> Option<FieldSet> {
        // Compiled rule positions coincide with source indices (lowering
        // preserves order and only ever truncates the tail).
        if source_index < self.rules.len() {
            Some(self.tree.fields_of(source_index))
        } else {
            None
        }
    }

    /// Per-subtree field-inspection sets: for each root dispatch dimension
    /// that holds any rules, the union of fields its rules inspect.
    pub fn subtree_fields(&self) -> Vec<(&'static str, FieldSet)> {
        self.tree.subtree_fields()
    }

    /// Shape statistics of the built matcher tree.
    pub fn matcher_stats(&self) -> MatcherStats {
        self.tree.stats()
    }

    fn endpoint_matches(&self, endpoint: &CEndpoint, addr: Ipv4Addr, port: u16) -> bool {
        let addr = addr.to_u32();
        let addr_match = match endpoint.addr {
            CAddr::Any => true,
            CAddr::Host(h) => h == addr,
            CAddr::Cidr { net, mask } => (addr & mask) == net,
            CAddr::Set(idx) => self.sets[idx].contains(addr),
        };
        if addr_match == endpoint.negate {
            return false;
        }
        match endpoint.port {
            CPort::Any => true,
            CPort::Eq(p) => port == p,
            CPort::Range(lo, hi) => port >= lo && port <= hi,
            CPort::Never => false,
        }
    }
}

/// One evaluation of a compiled policy: the policy, the responses, and the
/// stack-allocated response-lookup memo. Everything lives on the stack — the
/// steady-state path performs no heap allocation.
struct EvalRun<'e> {
    policy: &'e CompiledPolicy,
    src: Option<&'e Response>,
    dst: Option<&'e Response>,
    /// Logical time of this evaluation (window checks of short-lived bundles).
    now: u64,
    /// Memoized `latest(key)` results per compile-time slot: `None` =
    /// unresolved, `Some(None)` = key absent, `Some(Some(v))` = present.
    slots: [Option<Option<&'e str>>; RESP_SLOTS],
}

impl<'e> EvalRun<'e> {
    /// The tree-dispatched evaluation: gather the candidate lists selected by
    /// the flow's header fields and response values, then run the ordinary
    /// last-match/`quick` loop over their min-position merge. The merge
    /// yields candidates in source order, so match semantics are untouched —
    /// the tree only shrinks the candidate set.
    fn evaluate(&mut self, flow: &FiveTuple) -> Verdict {
        let policy = self.policy;
        let mut merge = Merge::new();
        policy.tree.push_flow_lists(flow, &policy.sets, &mut merge);
        for table in policy.tree.resp_tables() {
            // The nested response-value matchers: dispatch on the memoized
            // `latest(key)` lookup. A `&str` probe of a `String`-keyed map
            // neither allocates nor rehashes.
            if let Some(value) = self.latest(table.side, table.key, table.slot) {
                if let Some(list) = table.map.get(value) {
                    merge.push(list);
                }
            }
        }
        let mut verdict = Verdict {
            decision: policy.core.default_decision,
            matched_rule: None,
            matched_line: None,
            keep_state: false,
            quick: false,
            rules_evaluated: 0,
        };
        while let Some(pos) = merge.next() {
            let rule = &policy.rules[pos as usize];
            verdict.rules_evaluated += 1;
            if self.rule_matches(rule, flow) {
                verdict.decision = Decision::from_action(rule.action);
                verdict.matched_rule = Some(rule.index);
                verdict.matched_line = Some(rule.line);
                verdict.keep_state = rule.keep_state;
                if rule.quick {
                    verdict.quick = true;
                    break;
                }
            }
        }
        verdict
    }

    /// The reference path: an ordered scan over every live rule.
    fn evaluate_linear(&mut self, flow: &FiveTuple) -> Verdict {
        let policy = self.policy;
        let mut verdict = Verdict {
            decision: policy.core.default_decision,
            matched_rule: None,
            matched_line: None,
            keep_state: false,
            quick: false,
            rules_evaluated: 0,
        };
        for rule in &policy.rules[policy.floor..] {
            verdict.rules_evaluated += 1;
            if self.rule_matches(rule, flow) {
                verdict.decision = Decision::from_action(rule.action);
                verdict.matched_rule = Some(rule.index);
                verdict.matched_line = Some(rule.line);
                verdict.keep_state = rule.keep_state;
                if rule.quick {
                    verdict.quick = true;
                    break;
                }
            }
        }
        verdict
    }

    fn rule_matches(&mut self, rule: &CRule, flow: &FiveTuple) -> bool {
        // Candidate lists mix protocols (a port-dispatched rule may still
        // carry `proto`), so the protocol constraint is enforced here, with
        // the interpreter's exact (derived) equality.
        if let Some(proto) = rule.proto {
            if proto != flow.protocol {
                return false;
            }
        }
        if let Some(from) = &rule.from {
            if !self
                .policy
                .endpoint_matches(from, flow.src_ip, flow.src_port)
            {
                return false;
            }
        }
        if let Some(to) = &rule.to {
            if !self.policy.endpoint_matches(to, flow.dst_ip, flow.dst_port) {
                return false;
            }
        }
        rule.preds.iter().all(|p| self.pred_matches(p, flow, 0))
    }

    /// The memoized `latest(key)` lookup behind `@src[..]`/`@dst[..]`.
    fn latest(&mut self, side: Side, key: Sym, slot: u16) -> Option<&'e str> {
        let cache = (slot as usize) < RESP_SLOTS;
        if cache {
            if let Some(resolved) = self.slots[slot as usize] {
                return resolved;
            }
        }
        let response = match side {
            Side::Src => self.src,
            Side::Dst => self.dst,
        };
        let value = response.and_then(|r| r.latest(self.policy.symbols.get(key)));
        if cache {
            self.slots[slot as usize] = Some(value);
        }
        value
    }

    /// Resolves an argument to a string view. Only `*`-concatenated response
    /// references allocate (they must join sections); everything else borrows
    /// from the symbol table or the response.
    fn resolve(&mut self, arg: &CArg) -> Option<Cow<'e, str>> {
        match arg {
            CArg::Lit(sym) => Some(Cow::Borrowed(self.policy.symbols.get(*sym))),
            CArg::Missing => None,
            CArg::Resp {
                side,
                key,
                concat,
                slot,
            } => {
                if *concat {
                    let response = match side {
                        Side::Src => self.src?,
                        Side::Dst => self.dst?,
                    };
                    response
                        .concatenated(self.policy.symbols.get(*key))
                        .map(Cow::Owned)
                } else {
                    self.latest(*side, *key, *slot).map(Cow::Borrowed)
                }
            }
        }
    }

    fn pred_matches(&mut self, pred: &CPred, flow: &FiveTuple, depth: usize) -> bool {
        match pred {
            CPred::EqRespLit {
                side,
                key,
                slot,
                lit,
            } => match self.latest(*side, *key, *slot) {
                Some(value) => value == self.policy.symbols.get(*lit),
                None => false,
            },
            CPred::Cmp { op, a, b } => {
                let (a, b) = match (self.resolve(a), self.resolve(b)) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return false,
                };
                match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    ordered => match numeric_cmp(&a, &b) {
                        Some(ord) => match ordered {
                            CmpOp::Gt => ord == Ordering::Greater,
                            CmpOp::Lt => ord == Ordering::Less,
                            CmpOp::Gte => ord != Ordering::Less,
                            CmpOp::Lte => ord != Ordering::Greater,
                            CmpOp::Eq | CmpOp::Ne => {
                                // The arms above handled Eq/Ne before the
                                // numeric path; reaching here means the
                                // lowering produced an impossible CPred. Fail
                                // closed and count the fault instead of
                                // panicking in the decision path.
                                self.policy.core.note_internal_error();
                                false
                            }
                        },
                        None => false,
                    },
                }
            }
            CPred::Exists(arg) => match arg {
                // `*@x[k]` concatenates something iff `@x[k]` has a latest
                // value, so presence never needs the joined string.
                CArg::Lit(_) => true,
                CArg::Missing => false,
                CArg::Resp {
                    side, key, slot, ..
                } => self.latest(*side, *key, *slot).is_some(),
            },
            CPred::Member { value, list } => {
                let value = match self.resolve(value) {
                    Some(v) => v,
                    None => return false,
                };
                match list {
                    CList::Static(items) => {
                        !items.is_empty()
                            && value
                                .split_whitespace()
                                .any(|v| items.iter().any(|m| m == v))
                    }
                    CList::Dynamic(arg) => {
                        let text = match self.resolve(arg) {
                            Some(t) => t,
                            None => return false,
                        };
                        let mut items = list_items(&text).peekable();
                        if items.peek().is_none() {
                            return false;
                        }
                        value
                            .split_whitespace()
                            .any(|v| list_items(&text).any(|m| m == v))
                    }
                }
            }
            CPred::Includes { haystack, needle } => {
                let (haystack, needle) = match (self.resolve(haystack), self.resolve(needle)) {
                    (Some(h), Some(n)) => (h, n),
                    _ => return false,
                };
                haystack.split_whitespace().any(|item| item == &*needle)
            }
            CPred::Allowed(arg) => {
                if depth >= MAX_ALLOWED_DEPTH {
                    return false;
                }
                let requirements = match self.resolve(arg) {
                    Some(r) => r,
                    None => return false,
                };
                let sub_ruleset = match self.policy.core.requirements.parse(&requirements) {
                    Some(rs) => rs,
                    // Malformed delegated rules never grant access.
                    None => return false,
                };
                // Delegated rule sets arrive inside responses and cannot be
                // compiled ahead of time: hand them to the interpreter, which
                // shares this policy's core (and its requirement-parse memo)
                // via the `Arc`.
                EvalContext::from_parts(
                    sub_ruleset.as_ref(),
                    self.src,
                    self.dst,
                    Arc::clone(&self.policy.core),
                )
                .evaluate_at_depth(flow, depth + 1, self.now)
                .decision
                .is_pass()
            }
            CPred::Verify { sig, key, data } => {
                let sig = match self.resolve(sig) {
                    Some(s) => s,
                    None => return false,
                };
                let key_text = match self.resolve(key) {
                    Some(k) => k,
                    None => return false,
                };
                let key_hex = match self.policy.core.key_registry.resolve(&key_text) {
                    Some(k) => k.to_hex(),
                    None => key_text.into_owned(),
                };
                let mut items: Vec<Cow<'_, str>> = Vec::with_capacity(data.len());
                for arg in data {
                    match self.resolve(arg) {
                        Some(v) => items.push(v),
                        None => return false,
                    }
                }
                match &self.policy.core.verify_cache {
                    Some(cache) => cache
                        .verify_hex_at(&sig, &key_hex, &items, self.now)
                        .is_valid(),
                    None => verify_bundle_hex_at(&sig, &key_hex, &items, self.now).is_ok(),
                }
            }
            CPred::User { name, args } => {
                match self
                    .policy
                    .core
                    .functions
                    .get(self.policy.symbols.get(*name))
                {
                    Some(f) => {
                        let resolved: Vec<Option<String>> = args
                            .iter()
                            .map(|a| self.resolve(a).map(Cow::into_owned))
                            .collect();
                        f(&resolved)
                    }
                    None => false,
                }
            }
            CPred::Never => false,
        }
    }
}

impl std::fmt::Debug for CompiledPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledPolicy")
            .field("source_rules", &self.source_rules)
            .field("compiled_rules", &self.rules.len())
            .field("symbols", &self.symbols.strings.len())
            .field("sets", &self.sets.len())
            .field("matcher", &self.tree.stats())
            .field("default", &self.core.default_decision)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ruleset;
    use identxx_proto::Section;

    fn response_with(flow: FiveTuple, pairs: &[(&str, &str)]) -> Response {
        let mut r = Response::new(flow);
        let mut s = Section::new();
        for (k, v) in pairs {
            s.push(*k, *v);
        }
        r.push_section(s);
        r
    }

    fn assert_equivalent(
        policy: &str,
        flow: &FiveTuple,
        src: Option<&Response>,
        dst: Option<&Response>,
    ) {
        let rs = parse_ruleset(policy).unwrap();
        let mut ctx = EvalContext::new(&rs);
        if let Some(src) = src {
            ctx = ctx.with_src_response(src);
        }
        if let Some(dst) = dst {
            ctx = ctx.with_dst_response(dst);
        }
        let interpreted = ctx.evaluate(flow);
        let compiled = CompiledPolicy::compile(&rs).evaluate(flow, src, dst);
        assert_eq!(compiled.decision, interpreted.decision, "policy: {policy}");
        assert_eq!(compiled.matched_rule, interpreted.matched_rule);
        assert_eq!(compiled.matched_line, interpreted.matched_line);
        assert_eq!(compiled.keep_state, interpreted.keep_state);
        assert_eq!(compiled.quick, interpreted.quick);
    }

    #[test]
    fn last_match_and_quick_semantics() {
        let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
        assert_equivalent("block all\npass all\n", &flow, None, None);
        assert_equivalent("block quick all\npass all\n", &flow, None, None);
        assert_equivalent("pass all\nblock from 9.9.9.9 to any\n", &flow, None, None);
    }

    #[test]
    fn unconditional_quick_truncates_compiled_rules() {
        let rs = parse_ruleset("block all\npass quick all\nblock all\nblock all\n").unwrap();
        let compiled = CompiledPolicy::compile(&rs);
        assert_eq!(compiled.source_rule_count(), 4);
        assert_eq!(compiled.compiled_rule_count(), 2);
        // The truncated rules are reported, blaming the quick rule.
        let dead = compiled.dead_rules();
        assert_eq!(dead.iter().map(|d| d.index).collect::<Vec<_>>(), vec![2, 3]);
        assert!(dead.iter().all(|d| matches!(
            d.reason,
            DeadRuleReason::AfterUnconditionalQuick { index: 1, line: 2 }
        )));
        let flow = FiveTuple::tcp([1, 1, 1, 1], 1, [2, 2, 2, 2], 2);
        let v = compiled.evaluate(&flow, None, None);
        assert_eq!(v.decision, Decision::Pass);
        assert!(v.quick);
    }

    #[test]
    fn dead_prefix_rules_are_skipped() {
        // The final `block all` overrides everything before it; the compiled
        // policy must both skip the dead prefix and still report the correct
        // matched rule.
        let rs = parse_ruleset(
            "pass from 1.2.3.4 to any\npass all\nblock all\npass from 5.6.7.8 to any\n",
        )
        .unwrap();
        let compiled = CompiledPolicy::compile(&rs);
        let flow = FiveTuple::tcp([9, 9, 9, 9], 1, [8, 8, 8, 8], 2);
        let v = compiled.evaluate(&flow, None, None);
        assert_eq!(v.decision, Decision::Block);
        assert_eq!(v.matched_rule, Some(2));
        // Only the floor rule is a candidate: the dead prefix is skipped and
        // the `5.6.7.8` rule is host-indexed away from this flow entirely.
        assert_eq!(v.rules_evaluated, 1);
        let interpreted = EvalContext::new(&rs).evaluate(&flow);
        assert_eq!(v.decision, interpreted.decision);
        assert_eq!(v.matched_rule, interpreted.matched_rule);
        // The dead prefix (rules 0 and 1) is reported, blaming the floor rule.
        let dead = compiled.dead_rules();
        assert_eq!(dead.iter().map(|d| d.index).collect::<Vec<_>>(), vec![0, 1]);
        assert!(dead.iter().all(|d| matches!(
            d.reason,
            DeadRuleReason::SupersededByUnconditional { index: 2, line: 3 }
        )));
        // No internal faults in a healthy compile/evaluate cycle.
        assert_eq!(compiled.internal_error_count(), 0);
    }

    #[test]
    fn protocol_buckets_skip_non_candidates() {
        let mut policy = String::from("block all\n");
        for i in 0..50 {
            policy.push_str(&format!(
                "pass proto udp from any to any port {}\n",
                1000 + i
            ));
        }
        policy.push_str("pass proto tcp from any to any port 80\n");
        let rs = parse_ruleset(&policy).unwrap();
        let compiled = CompiledPolicy::compile(&rs);
        let tcp = FiveTuple::tcp([1, 1, 1, 1], 999, [2, 2, 2, 2], 80);
        let v = compiled.evaluate(&tcp, None, None);
        assert_eq!(v.decision, Decision::Pass);
        // block all + the single tcp rule: the 50 udp rules are never touched.
        assert_eq!(v.rules_evaluated, 2);
        let interpreted = EvalContext::new(&rs).evaluate(&tcp);
        assert_eq!(v.decision, interpreted.decision);
        assert_eq!(v.matched_rule, interpreted.matched_rule);
        // A UDP flow sees the udp bucket.
        let udp = FiveTuple::udp([1, 1, 1, 1], 999, [2, 2, 2, 2], 1003);
        assert_eq!(
            compiled.evaluate(&udp, None, None).decision,
            EvalContext::new(&rs).evaluate(&udp).decision
        );
        // A protocol that appears nowhere uses the wildcard bucket.
        let icmp = FiveTuple::new(
            Ipv4Addr::new(1, 1, 1, 1),
            0,
            Ipv4Addr::new(2, 2, 2, 2),
            0,
            IpProtocol::Icmp,
        );
        assert_eq!(
            compiled.evaluate(&icmp, None, None).decision,
            EvalContext::new(&rs).evaluate(&icmp).decision
        );
    }

    #[test]
    fn tables_flatten_with_nesting_and_cycles() {
        let policy = "table <server> { 192.168.1.1 }\n\
                      table <lan> { 192.168.0.0/24 }\n\
                      table <all> { <lan> <server> <all> <missing> }\n\
                      block all\n\
                      pass from <all> to !<all>\n";
        for (src, dst) in [
            ([192u8, 168, 0, 10], [8u8, 8, 8, 8]),
            ([192, 168, 0, 10], [192, 168, 1, 1]),
            ([8, 8, 8, 8], [9, 9, 9, 9]),
            ([192, 168, 1, 1], [1, 1, 1, 1]),
        ] {
            let flow = FiveTuple::tcp(src, 1000, dst, 443);
            assert_equivalent(policy, &flow, None, None);
        }
    }

    #[test]
    fn named_ports_and_ranges_compile() {
        let flow_http = FiveTuple::tcp([1, 1, 1, 1], 999, [2, 2, 2, 2], 80);
        let flow_ssh = FiveTuple::tcp([1, 1, 1, 1], 999, [2, 2, 2, 2], 22);
        for policy in [
            "block all\npass from any to any port http\n",
            "block all\npass from any to any port 1000:2000\n",
            "block all\npass from any to any port nosuchservice\n",
        ] {
            assert_equivalent(policy, &flow_http, None, None);
            assert_equivalent(policy, &flow_ssh, None, None);
        }
    }

    #[test]
    fn predicates_match_interpreter() {
        let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
        let src = response_with(
            flow,
            &[
                ("name", "skype"),
                ("version", "210"),
                ("groupID", "users wheel"),
                ("os-patch", "MS08-001 MS08-067"),
            ],
        );
        let dst = Response::new(flow);
        for policy in [
            "block all\npass all with eq(@src[name], skype)\n",
            "block all\npass all with ne(@src[name], firefox)\n",
            "block all\npass all with gte(@src[version], 200)\n",
            "block all\npass all with lt(@src[version], 200)\n",
            "block all\npass all with exists(@src[name])\n",
            "block all\npass all with exists(@src[nope])\n",
            "block all\npass all with exists(*@src[name])\n",
            "block all\npass all with includes(@src[os-patch], MS08-067)\n",
            "block all\npass all with includes(@src[os-patch], MS09-001)\n",
            "apps = \"{ skype http }\"\nblock all\npass all with member(@src[name], $apps)\n",
            "block all\npass all with member(@src[groupID], wheel)\n",
            "block all\npass all with eq(@src[name])\n",
            "block all\npass all with frobnicate(@src[name])\n",
            "dict <d> { k : skype }\nblock all\npass all with eq(@src[name], @d[k])\n",
            "block all\npass all with eq(@src[name], @d[missing])\n",
            "block all\npass all with eq($undefined, skype)\n",
        ] {
            assert_equivalent(policy, &flow, Some(&src), Some(&dst));
        }
    }

    #[test]
    fn compiler_builder_matches_context_builders() {
        let rs = parse_ruleset("block all\npass all with member(@src[groupID], users)\n").unwrap();
        let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
        let src = response_with(flow, &[("groupID", "users")]);
        let dst = Response::new(flow);
        let compiled = PolicyCompiler::new()
            .with_named_list("users", vec!["users".to_string()])
            .compile(&rs);
        let interpreted = EvalContext::new(&rs)
            .with_named_list("users", vec!["users".to_string()])
            .with_responses(&src, &dst)
            .evaluate(&flow);
        let v = compiled.evaluate(&flow, Some(&src), Some(&dst));
        assert_eq!(v.decision, interpreted.decision);
        assert_eq!(v.decision, Decision::Pass);

        // Default decision plumbs through.
        let empty = parse_ruleset("").unwrap();
        let blocked = PolicyCompiler::new()
            .with_default(Decision::Block)
            .compile(&empty);
        assert_eq!(
            blocked.evaluate(&flow, None, None).decision,
            Decision::Block
        );
    }

    #[test]
    fn allowed_delegation_uses_interpreter_oracle() {
        let flow = FiveTuple::tcp([10, 0, 0, 1], 9999, [10, 0, 0, 2], 7000);
        let src = Response::new(flow);
        let good = response_with(
            flow,
            &[("requirements", "block all\npass from any to any port 7000")],
        );
        let bad = response_with(
            flow,
            &[("requirements", "block all\npass from any to any port 22")],
        );
        let malformed = response_with(flow, &[("requirements", "pass from !!!")]);
        let recursive = response_with(
            flow,
            &[(
                "requirements",
                "block all\npass all with allowed(@dst[requirements])",
            )],
        );
        let policy = "block all\npass all with allowed(@dst[requirements])\n";
        for dst in [&good, &bad, &malformed, &recursive] {
            assert_equivalent(policy, &flow, Some(&src), Some(dst));
        }
    }

    #[test]
    fn compiled_allowed_memoizes_requirement_parsing() {
        let flow = FiveTuple::tcp([10, 0, 0, 1], 9999, [10, 0, 0, 2], 7000);
        let src = Response::new(flow);
        let dst = response_with(
            flow,
            &[("requirements", "block all\npass from any to any port 7000")],
        );
        let rs = parse_ruleset("block all\npass all with allowed(@dst[requirements])\n").unwrap();
        let compiled = CompiledPolicy::compile(&rs);
        assert_eq!(compiled.requirements_parsed(), 0);
        for _ in 0..8 {
            assert_eq!(
                compiled.evaluate(&flow, Some(&src), Some(&dst)).decision,
                Decision::Pass
            );
        }
        assert_eq!(
            compiled.requirements_parsed(),
            1,
            "a repeated requirement string must parse exactly once"
        );
    }

    #[test]
    fn verify_matches_interpreter() {
        use identxx_crypto::{sign_bundle_hex, KeyPair};
        let research = KeyPair::from_seed(b"research-group-key");
        let flow = FiveTuple::tcp([10, 0, 0, 1], 9999, [10, 0, 0, 2], 7000);
        let requirements = "block all\npass from any to any port 7000";
        let sig = sign_bundle_hex(&research, &["hash", "app", requirements]);
        let policy = format!(
            "dict <pubkeys> {{ research : {} }}\nblock all\npass all with verify(@dst[req-sig], @pubkeys[research], @dst[exe-hash], @dst[app-name], @dst[requirements])\n",
            research.public().to_hex()
        );
        let src = Response::new(flow);
        let good = response_with(
            flow,
            &[
                ("req-sig", sig.as_str()),
                ("exe-hash", "hash"),
                ("app-name", "app"),
                ("requirements", requirements),
            ],
        );
        let tampered = response_with(
            flow,
            &[
                ("req-sig", sig.as_str()),
                ("exe-hash", "hash"),
                ("app-name", "app"),
                ("requirements", "pass all"),
            ],
        );
        for dst in [&good, &tampered] {
            assert_equivalent(&policy, &flow, Some(&src), Some(dst));
        }
        let rs = parse_ruleset(&policy).unwrap();
        assert_eq!(
            CompiledPolicy::compile(&rs)
                .evaluate(&flow, Some(&src), Some(&good))
                .decision,
            Decision::Pass
        );
    }

    #[test]
    fn verify_windowed_and_cached_matches_interpreter() {
        use identxx_crypto::{sign_bundle_windowed, KeyPair};
        let secur = KeyPair::from_seed(b"Secur");
        let flow = FiveTuple::tcp([10, 0, 0, 1], 9999, [10, 0, 0, 2], 7000);
        let requirements = "block all\npass from any to any port 7000";
        let bundle = sign_bundle_windowed(
            &secur,
            "Secur",
            1_000,
            2_000,
            &["hash", "app", requirements],
        );
        let rs = parse_ruleset(
            "block all\npass all with verify(@dst[req-sig], Secur, @dst[exe-hash], @dst[app-name], @dst[requirements])\n",
        )
        .unwrap();
        let src = Response::new(flow);
        let dst = response_with(
            flow,
            &[
                ("req-sig", bundle.to_hex().as_str()),
                ("exe-hash", "hash"),
                ("app-name", "app"),
                ("requirements", requirements),
            ],
        );
        let mut registry = KeyRegistry::new();
        registry.insert("Secur", secur.public());
        let cache = Arc::new(VerifyCache::new());
        let compiled = PolicyCompiler::new()
            .with_key_registry(registry.clone())
            .with_verify_cache(Arc::clone(&cache))
            .compile(&rs);
        let interp = EvalContext::new(&rs)
            .with_responses(&src, &dst)
            .with_key_registry(registry);
        for now in [0u64, 999, 1_000, 1_999, 2_000, 50_000] {
            let c = compiled.evaluate_at(&flow, Some(&src), Some(&dst), now);
            let i = interp.evaluate_at(&flow, now);
            assert_eq!(c.decision, i.decision, "divergence at now={now}");
            assert_eq!(
                c.decision,
                if (1_000..2_000).contains(&now) {
                    Decision::Pass
                } else {
                    Decision::Block
                }
            );
        }
        // The two in-window evaluations shared one fresh verification.
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn user_functions_compile() {
        let rs = parse_ruleset("block all\npass all with business-hours()\n").unwrap();
        let flow = FiveTuple::tcp([1, 1, 1, 1], 1, [2, 2, 2, 2], 2);
        let mut funcs = FunctionRegistry::new();
        funcs.register("business-hours", |_args| true);
        let compiled = PolicyCompiler::new().with_functions(funcs).compile(&rs);
        assert_eq!(
            compiled.evaluate(&flow, None, None).decision,
            Decision::Pass
        );
        // Without the registration the call fails closed.
        let bare = CompiledPolicy::compile(&rs);
        assert_eq!(bare.evaluate(&flow, None, None).decision, Decision::Block);
    }

    #[test]
    fn concat_and_latest_semantics() {
        let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
        let mut src = Response::new(flow);
        let mut s1 = Section::new();
        s1.push("site", "branch-a");
        src.push_section(s1);
        let mut s2 = Section::new();
        s2.push("site", "branch-b");
        src.push_section(s2);
        let dst = Response::new(flow);
        for policy in [
            "block all\npass all with eq(@src[site], branch-b)\n",
            "block all\npass all with eq(*@src[site], branch-a branch-b)\n",
            "block all\npass all with eq(*@src[site], branch-a)\n",
        ] {
            assert_equivalent(policy, &flow, Some(&src), Some(&dst));
        }
    }

    #[test]
    fn debug_formats() {
        let rs = parse_ruleset("block all\n").unwrap();
        let compiled = CompiledPolicy::compile(&rs);
        let rendered = format!("{compiled:?}");
        assert!(rendered.contains("CompiledPolicy"));
        assert!(rendered.contains("compiled_rules"));
    }

    #[test]
    fn response_literal_dispatch_keeps_candidates_flat() {
        // The E8a shape: a default plus many response-literal rules. The
        // tree dispatches on the memoized `@src[name]` value, so a flow sees
        // the residual default plus exactly its own rule — regardless of n.
        let mut policy = String::from("block all\n");
        for i in 0..500 {
            policy.push_str(&format!("pass all with eq(@src[name], app-{i})\n"));
        }
        let rs = parse_ruleset(&policy).unwrap();
        let compiled = CompiledPolicy::compile(&rs);
        let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
        let src = response_with(flow, &[("name", "app-123")]);
        let dst = Response::new(flow);
        let v = compiled.evaluate(&flow, Some(&src), Some(&dst));
        assert_eq!(v.decision, Decision::Pass);
        assert_eq!(v.matched_rule, Some(124));
        assert_eq!(v.rules_evaluated, 2, "block all + the one app-123 rule");
        // A value matching no rule only sees the residual default.
        let other = response_with(flow, &[("name", "unlisted")]);
        let v = compiled.evaluate(&flow, Some(&other), Some(&dst));
        assert_eq!(v.decision, Decision::Block);
        assert_eq!(v.rules_evaluated, 1);
        // And the linear reference path decides identically.
        let lin = compiled.evaluate_linear(&flow, Some(&src), Some(&dst));
        assert_eq!(lin.decision, Decision::Pass);
        assert_eq!(lin.matched_rule, Some(124));
        assert_eq!(lin.rules_evaluated, 501);
    }

    #[test]
    fn tree_dispatch_preserves_last_match_across_lists() {
        // Candidates from different dispatch tables (src-host vs dst-port vs
        // residual) must still be visited in source order: the *last* match
        // wins, and `quick` stops at the right rule.
        let policy = "block all\n\
                      pass from 10.0.0.1 to any\n\
                      block from any to any port 80\n\
                      pass quick from 10.0.0.1 to any port 80\n\
                      block from 10.0.0.1 to any\n";
        let rs = parse_ruleset(policy).unwrap();
        let compiled = CompiledPolicy::compile(&rs);
        let flow = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80);
        let v = compiled.evaluate(&flow, None, None);
        let interpreted = EvalContext::new(&rs).evaluate(&flow);
        assert_eq!(v.decision, interpreted.decision);
        assert_eq!(v.matched_rule, interpreted.matched_rule);
        assert_eq!(v.quick, interpreted.quick);
        assert_eq!(v.matched_rule, Some(3), "quick rule wins before rule 4");
        let lin = compiled.evaluate_linear(&flow, None, None);
        assert_eq!(lin.decision, v.decision);
        assert_eq!(lin.matched_rule, v.matched_rule);
    }

    #[test]
    fn unmatchable_rules_become_unreachable_leaves() {
        // (An inverted port range is the third unmatchable class, but the
        // parser already rejects it, so it is only reachable from hand-built
        // ASTs.)
        let policy = "table <empty> { }\n\
                      block all\n\
                      pass from any to any port nosuchservice\n\
                      pass from <empty> to any\n\
                      pass from !<empty> to any\n";
        let rs = parse_ruleset(policy).unwrap();
        let compiled = CompiledPolicy::compile(&rs);
        let dead: Vec<_> = compiled
            .dead_rules()
            .iter()
            .filter(|d| matches!(d.reason, DeadRuleReason::Unmatchable { .. }))
            .collect();
        assert_eq!(
            dead.iter().map(|d| d.index).collect::<Vec<_>>(),
            vec![1, 2],
            "{:?}",
            compiled.dead_rules()
        );
        for d in &dead {
            // Self-blamed: no other rule to point at, the line is its own.
            assert_eq!(d.reason.blamed_index(), None);
            assert_eq!(d.reason.blamed_line(), d.line);
            assert!(format!("{}", d.reason).contains("unmatchable"));
        }
        // The negated-empty-set rule matches everything and stays live.
        let flow = FiveTuple::tcp([1, 2, 3, 4], 1, [5, 6, 7, 8], 2);
        let v = compiled.evaluate(&flow, None, None);
        assert_eq!(v.decision, Decision::Pass);
        assert_eq!(v.matched_rule, Some(3));
        assert_eq!(v.decision, EvalContext::new(&rs).evaluate(&flow).decision);
    }

    #[test]
    fn fields_inspected_reflects_rule_structure() {
        use crate::matcher::FieldSet;
        let policy = "block all\n\
                      pass proto tcp from 10.0.0.0/8 port 1000 to any port 80\n\
                      pass all with eq(@src[name], firefox)\n\
                      pass all with eq(@dst[role], server)\n\
                      pass quick all\nblock all\n";
        let rs = parse_ruleset(policy).unwrap();
        let compiled = CompiledPolicy::compile(&rs);
        assert_eq!(compiled.fields_inspected(0), Some(FieldSet::EMPTY));
        let full = compiled.fields_inspected(1).unwrap();
        for field in [
            FieldSet::PROTO,
            FieldSet::SRC_ADDR,
            FieldSet::SRC_PORT,
            FieldSet::DST_PORT,
        ] {
            assert!(full.contains(field), "{full}");
        }
        assert!(!full.contains(FieldSet::DST_ADDR), "`to any` reads nothing");
        assert_eq!(compiled.fields_inspected(2), Some(FieldSet::RESP_SRC));
        assert_eq!(compiled.fields_inspected(3), Some(FieldSet::RESP_DST));
        // Rule 5 is truncated after the unconditional quick rule: no entry.
        assert_eq!(compiled.fields_inspected(5), None);
        // The per-subtree union is exposed for pfcheck.
        let subtrees = compiled.subtree_fields();
        assert!(
            subtrees.iter().any(|(name, f)| *name == "resp-value"
                && f.contains(FieldSet::RESP_SRC)
                && f.contains(FieldSet::RESP_DST)),
            "{subtrees:?}"
        );
    }

    #[test]
    fn matcher_stats_summarize_tree_shape() {
        let policy = "table <lan> { 192.168.0.0/16 }\n\
                      block all\n\
                      pass from any to any port 80\n\
                      pass from any to 10.0.0.1\n\
                      pass from <lan> to any\n\
                      pass proto udp all\n\
                      pass all with eq(@src[name], firefox)\n";
        let rs = parse_ruleset(policy).unwrap();
        let compiled = CompiledPolicy::compile(&rs);
        let stats = compiled.matcher_stats();
        assert_eq!(stats.rules_indexed, 5);
        assert_eq!(stats.residual_rules, 1, "only `block all` is residual");
        assert_eq!(stats.unreachable_rules, 0);
        assert_eq!(stats.port_entries, 1);
        assert_eq!(stats.host_entries, 1);
        assert_eq!(stats.proto_entries, 1);
        assert_eq!(stats.addr_groups, 1);
        assert_eq!(stats.resp_tables, 1);
        assert_eq!(stats.resp_entries, 1);
    }

    #[test]
    fn port_range_expansion_dispatches_narrow_ranges() {
        // A narrow range is expanded into per-port table entries; a wide one
        // falls through to the residual list. Both decide identically.
        let policy = "block all\n\
                      pass from any to any port 8000:8009\n\
                      pass from any to any port 1024:65535\n";
        let rs = parse_ruleset(policy).unwrap();
        let compiled = CompiledPolicy::compile(&rs);
        for port in [7999u16, 8000, 8005, 8009, 8010, 80, 1024, 65535] {
            let flow = FiveTuple::tcp([1, 1, 1, 1], 1, [2, 2, 2, 2], port);
            let v = compiled.evaluate(&flow, None, None);
            let i = EvalContext::new(&rs).evaluate(&flow);
            assert_eq!(v.decision, i.decision, "port {port}");
            assert_eq!(v.matched_rule, i.matched_rule, "port {port}");
        }
    }
}
