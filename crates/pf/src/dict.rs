//! PF+=2 `dict` definitions.
//!
//! "The dict keyword allows the definition of dictionaries" (§3.3). The
//! paper's examples use dictionaries to hold trusted public keys (Fig. 5 and
//! Fig. 7), which `with verify(…, @pubkeys[research], …)` then references.

use std::collections::BTreeMap;

/// A named dictionary mapping string keys to string values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dict {
    entries: BTreeMap<String, String>,
}

impl Dict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dict::default()
    }

    /// Creates a dictionary from `(key, value)` pairs.
    pub fn from_pairs<K: Into<String>, V: Into<String>>(
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> Self {
        let mut d = Dict::new();
        for (k, v) in pairs {
            d.insert(k, v);
        }
        d
    }

    /// Inserts (or replaces) an entry.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.entries.insert(key.into(), value.into());
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut d = Dict::new();
        d.insert("research", "sk3ajffa932");
        d.insert("admin", "a923jxa12kz");
        assert_eq!(d.get("research"), Some("sk3ajffa932"));
        assert_eq!(d.get("missing"), None);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn from_pairs_and_iteration_order() {
        let d = Dict::from_pairs([("b", "2"), ("a", "1")]);
        let collected: Vec<_> = d.iter().collect();
        assert_eq!(collected, vec![("a", "1"), ("b", "2")]);
    }

    #[test]
    fn reinsert_overrides() {
        let mut d = Dict::new();
        d.insert("k", "old");
        d.insert("k", "new");
        assert_eq!(d.get("k"), Some("new"));
        assert_eq!(d.len(), 1);
    }
}
