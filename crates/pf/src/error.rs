//! Parse- and evaluation-time errors for PF+=2.

use std::fmt;

/// An error produced while lexing, parsing, or evaluating PF+=2 policy text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfError {
    /// A lexical error (bad character, unterminated string).
    Lex { line: usize, message: String },
    /// A syntax error.
    Parse { line: usize, message: String },
    /// A reference to an undefined table.
    UndefinedTable(String),
    /// A reference to an undefined dictionary.
    UndefinedDict(String),
    /// A reference to an undefined macro.
    UndefinedMacro(String),
    /// A call to an unknown function.
    UnknownFunction(String),
    /// A function was called with the wrong number of arguments.
    BadArity {
        function: String,
        expected: String,
        got: usize,
    },
    /// A malformed address or network in a table or rule.
    BadAddress(String),
    /// A malformed port specification.
    BadPort(String),
    /// `allowed()` recursion exceeded the configured depth limit.
    RecursionLimit,
}

impl PfError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        PfError::Parse {
            line,
            message: message.into(),
        }
    }

    /// Convenience constructor for lex errors.
    pub fn lex(line: usize, message: impl Into<String>) -> Self {
        PfError::Lex {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for PfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfError::Lex { line, message } => write!(f, "lex error at line {line}: {message}"),
            PfError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            PfError::UndefinedTable(t) => write!(f, "undefined table <{t}>"),
            PfError::UndefinedDict(d) => write!(f, "undefined dictionary <{d}>"),
            PfError::UndefinedMacro(m) => write!(f, "undefined macro ${m}"),
            PfError::UnknownFunction(name) => write!(f, "unknown function {name}"),
            PfError::BadArity {
                function,
                expected,
                got,
            } => write!(
                f,
                "function {function} expects {expected} arguments, got {got}"
            ),
            PfError::BadAddress(a) => write!(f, "malformed address: {a:?}"),
            PfError::BadPort(p) => write!(f, "malformed port: {p:?}"),
            PfError::RecursionLimit => write!(f, "allowed() recursion limit exceeded"),
        }
    }
}

impl std::error::Error for PfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_numbers() {
        let e = PfError::parse(7, "expected endpoint");
        assert!(e.to_string().contains("line 7"));
        let e = PfError::lex(3, "unterminated string");
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn display_for_semantic_errors() {
        assert!(PfError::UndefinedTable("lan".into())
            .to_string()
            .contains("<lan>"));
        assert!(PfError::UnknownFunction("frob".into())
            .to_string()
            .contains("frob"));
        let arity = PfError::BadArity {
            function: "eq".into(),
            expected: "2".into(),
            got: 3,
        };
        assert!(arity.to_string().contains("eq"));
    }
}
