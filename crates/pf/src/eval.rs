//! The PF+=2 evaluator.
//!
//! Evaluation follows PF semantics: rules are considered in order and the
//! **last matching rule** determines the decision, unless a matching rule
//! carries the `quick` keyword, in which case evaluation stops immediately
//! (§3.3). A rule matches a flow when its protocol, `from` and `to`
//! constraints match the 5-tuple *and* every `with` predicate evaluates to
//! true over the `@src`/`@dst` dictionaries built from the ident++ responses.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

use identxx_crypto::{verify_bundle_hex_at, KeyRegistry, VerifyCache};
use identxx_proto::{FiveTuple, Response};

use crate::ast::{Action, AddrSpec, Endpoint, FnArg, FnCall, PortSpec, Rule, RuleSet};
use crate::functions::{numeric_cmp, parse_list_literal, FunctionRegistry};
use crate::parser::parse_ruleset;
use crate::services::resolve_port;

/// The outcome of a policy evaluation for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// The flow is allowed.
    Pass,
    /// The flow is denied.
    Block,
}

impl Decision {
    /// Converts a rule action into a decision.
    pub fn from_action(action: Action) -> Decision {
        match action {
            Action::Pass => Decision::Pass,
            Action::Block => Decision::Block,
        }
    }

    /// Whether the decision allows the flow.
    pub fn is_pass(&self) -> bool {
        matches!(self, Decision::Pass)
    }
}

/// The full verdict of an evaluation, including bookkeeping useful for
/// benchmarking and auditing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The decision.
    pub decision: Decision,
    /// The index (into `RuleSet::rules`) of the rule that determined the
    /// decision, or `None` if no rule matched and the default applied.
    pub matched_rule: Option<usize>,
    /// Source line of the deciding rule.
    pub matched_line: Option<usize>,
    /// Whether the deciding rule requested `keep state`.
    pub keep_state: bool,
    /// Whether evaluation was cut short by a `quick` rule.
    pub quick: bool,
    /// How many rules were examined (matched or not).
    pub rules_evaluated: usize,
}

/// Maximum nesting depth for the `allowed()` function.
///
/// Requirements supplied by end-hosts may themselves contain `allowed()`
/// calls; an attacker must not be able to recurse the controller to death.
pub const MAX_ALLOWED_DEPTH: usize = 4;

/// Upper bound on distinct requirement strings the memo retains.
///
/// Requirement text arrives inside end-host responses, which a compromised
/// host controls (the same threat [`MAX_ALLOWED_DEPTH`] bounds): an attacker
/// answering every flow with a unique requirements string must not be able
/// to grow controller memory without limit. A full memo keeps serving hits
/// for the strings it already holds and parses everything else statelessly —
/// the pre-memoization behaviour, slower but bounded.
pub const MAX_CACHED_REQUIREMENTS: usize = 1024;

/// A memo of parsed delegated-requirement rule sets, keyed by the exact
/// requirement text.
///
/// `allowed()` receives its rule set *inside a response*, so it cannot be
/// compiled ahead of time — but delegation-heavy policies evaluate the same
/// requirement string for every flow of an application, and parsing it anew
/// each time puts the parser on the flow-setup hot path. The cache stores the
/// parse result (including failures, so malformed requirements are not
/// re-parsed either) behind a mutex, holding at most
/// [`MAX_CACHED_REQUIREMENTS`] entries; both the interpreter and the
/// compiled evaluator consult it through the shared [`EvalCore`].
#[derive(Default)]
pub(crate) struct RequirementCache {
    parsed: Mutex<HashMap<String, Option<Arc<RuleSet>>>>,
    /// How many cache misses actually invoked the parser (telemetry for the
    /// parse-once guarantee).
    parses: AtomicU64,
}

impl RequirementCache {
    /// Parses `requirements`, serving repeats from the memo. `None` means the
    /// text does not parse — malformed delegated rules never grant access.
    pub(crate) fn parse(&self, requirements: &str) -> Option<Arc<RuleSet>> {
        let mut parsed = self.parsed.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(hit) = parsed.get(requirements) {
            return hit.clone();
        }
        self.parses.fetch_add(1, AtomicOrdering::Relaxed);
        let result = parse_ruleset(requirements).ok().map(Arc::new);
        if parsed.len() < MAX_CACHED_REQUIREMENTS {
            parsed.insert(requirements.to_string(), result.clone());
        }
        result
    }

    /// Number of times the parser actually ran.
    pub(crate) fn parse_count(&self) -> u64 {
        self.parses.load(AtomicOrdering::Relaxed)
    }

    /// Number of distinct requirement strings currently memoized.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.parsed.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

/// The shareable part of an evaluation context: everything a rule set may
/// reference that is neither the rule set itself nor the per-flow responses.
///
/// `allowed()` re-enters the evaluator for delegated requirement rule sets;
/// keeping this state behind an [`Arc`] lets each recursion (and the compiled
/// evaluator in [`crate::compile`]) share it instead of deep-cloning the key
/// registry, named lists, and function registry per call.
#[derive(Clone)]
pub(crate) struct EvalCore {
    pub(crate) key_registry: KeyRegistry,
    pub(crate) named_lists: BTreeMap<String, Vec<String>>,
    pub(crate) functions: FunctionRegistry,
    pub(crate) default_decision: Decision,
    /// Shared across clones (the cache is keyed by requirement text alone, so
    /// a core tweaked via a builder can still reuse earlier parses).
    pub(crate) requirements: Arc<RequirementCache>,
    /// Count of internal evaluator faults (compiler-bug class): states the
    /// lowering promises are impossible fail closed and tick this counter
    /// instead of panicking in the decision path. Shared across clones.
    pub(crate) internal_errors: Arc<std::sync::atomic::AtomicU64>,
    /// Amortized `verify()` plane: when present, bundle verification verdicts
    /// are cached by content hash so repeated bundles skip the curve math.
    /// `None` falls back to uncached [`verify_bundle_hex_at`].
    pub(crate) verify_cache: Option<Arc<VerifyCache>>,
}

impl EvalCore {
    pub(crate) fn new() -> Self {
        EvalCore {
            key_registry: KeyRegistry::new(),
            named_lists: BTreeMap::new(),
            functions: FunctionRegistry::new(),
            default_decision: Decision::Pass,
            requirements: Arc::new(RequirementCache::default()),
            internal_errors: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            verify_cache: None,
        }
    }

    /// Records one internal fault (see `internal_errors`).
    pub(crate) fn note_internal_error(&self) {
        self.internal_errors
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Number of internal faults recorded so far.
    pub(crate) fn internal_error_count(&self) -> u64 {
        self.internal_errors
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Default for EvalCore {
    fn default() -> Self {
        EvalCore::new()
    }
}

/// Evaluation context: the rule set plus everything referenced from it.
#[derive(Clone)]
pub struct EvalContext<'a> {
    ruleset: &'a RuleSet,
    src: Option<&'a Response>,
    dst: Option<&'a Response>,
    core: Arc<EvalCore>,
}

impl<'a> EvalContext<'a> {
    /// Creates a context for a rule set with no responses attached.
    ///
    /// The default decision (when no rule matches) is `Pass`, matching PF; the
    /// paper's configurations always start with an explicit `block all`.
    pub fn new(ruleset: &'a RuleSet) -> Self {
        EvalContext {
            ruleset,
            src: None,
            dst: None,
            core: Arc::new(EvalCore::new()),
        }
    }

    /// Builds a context over an already-shared core (used by the compiled
    /// evaluator when `allowed()` falls back to the interpreter).
    pub(crate) fn from_parts(
        ruleset: &'a RuleSet,
        src: Option<&'a Response>,
        dst: Option<&'a Response>,
        core: Arc<EvalCore>,
    ) -> Self {
        EvalContext {
            ruleset,
            src,
            dst,
            core,
        }
    }

    /// Attaches the `@src` and `@dst` responses.
    pub fn with_responses(mut self, src: &'a Response, dst: &'a Response) -> Self {
        self.src = Some(src);
        self.dst = Some(dst);
        self
    }

    /// Attaches only a source response (e.g. when the destination daemon did
    /// not answer).
    pub fn with_src_response(mut self, src: &'a Response) -> Self {
        self.src = Some(src);
        self
    }

    /// Attaches only a destination response.
    pub fn with_dst_response(mut self, dst: &'a Response) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Sets the decision applied when no rule matches.
    pub fn with_default(mut self, default: Decision) -> Self {
        Arc::make_mut(&mut self.core).default_decision = default;
        self
    }

    /// Attaches a registry of trusted public keys for `verify` (in addition
    /// to keys stored inline in `dict` definitions).
    pub fn with_key_registry(mut self, registry: KeyRegistry) -> Self {
        Arc::make_mut(&mut self.core).key_registry = registry;
        self
    }

    /// Defines a named list usable as the second argument of `member` (e.g.
    /// the `users` group of §3.3's example).
    pub fn with_named_list(mut self, name: impl Into<String>, members: Vec<String>) -> Self {
        Arc::make_mut(&mut self.core)
            .named_lists
            .insert(name.into(), members);
        self
    }

    /// Attaches user-defined functions.
    pub fn with_functions(mut self, functions: FunctionRegistry) -> Self {
        Arc::make_mut(&mut self.core).functions = functions;
        self
    }

    /// Attaches a shared verification cache: `verify()` verdicts are then
    /// amortized by bundle content hash instead of re-running curve math for
    /// every flow that presents the same bundle.
    pub fn with_verify_cache(mut self, cache: Arc<VerifyCache>) -> Self {
        Arc::make_mut(&mut self.core).verify_cache = Some(cache);
        self
    }

    /// The rule set this context evaluates.
    pub fn ruleset(&self) -> &RuleSet {
        self.ruleset
    }

    /// Number of internal evaluator faults recorded (states the compiler
    /// promises are impossible; they fail closed instead of panicking).
    /// Nonzero values indicate a compiler bug worth reporting.
    pub fn internal_error_count(&self) -> u64 {
        self.core.internal_error_count()
    }

    /// How many times `allowed()` actually invoked the parser on a delegated
    /// requirement string. Repeats of the same text are served from a memo,
    /// so this stays at 1 however many flows carry the same requirements.
    pub fn requirements_parsed(&self) -> u64 {
        self.core.requirements.parse_count()
    }

    /// Evaluates the policy for `flow` at logical time zero (unwindowed
    /// bundles only; windowed bundles need [`EvalContext::evaluate_at`]).
    pub fn evaluate(&self, flow: &FiveTuple) -> Verdict {
        self.evaluate_at(flow, 0)
    }

    /// Evaluates the policy for `flow` at logical time `now` (microseconds on
    /// the system's logical clock). `now` only affects `verify()` of
    /// short-lived bundles, whose validity window is checked against it.
    pub fn evaluate_at(&self, flow: &FiveTuple, now: u64) -> Verdict {
        self.evaluate_rules(&self.ruleset.rules, flow, 0, now)
    }

    /// Evaluates starting at a given `allowed()` nesting depth (used by the
    /// compiled evaluator, which delegates sub-rule sets to the interpreter).
    pub(crate) fn evaluate_at_depth(&self, flow: &FiveTuple, depth: usize, now: u64) -> Verdict {
        self.evaluate_rules(&self.ruleset.rules, flow, depth, now)
    }

    /// Evaluates an arbitrary rule list in this context (used by `allowed()`
    /// for delegated requirement rule sets).
    fn evaluate_rules(&self, rules: &[Rule], flow: &FiveTuple, depth: usize, now: u64) -> Verdict {
        let mut verdict = Verdict {
            decision: self.core.default_decision,
            matched_rule: None,
            matched_line: None,
            keep_state: false,
            quick: false,
            rules_evaluated: 0,
        };
        for (idx, rule) in rules.iter().enumerate() {
            verdict.rules_evaluated += 1;
            if self.rule_matches(rule, flow, depth, now) {
                verdict.decision = Decision::from_action(rule.action);
                verdict.matched_rule = Some(idx);
                verdict.matched_line = Some(rule.line);
                verdict.keep_state = rule.keep_state;
                if rule.quick {
                    verdict.quick = true;
                    break;
                }
            }
        }
        verdict
    }

    fn rule_matches(&self, rule: &Rule, flow: &FiveTuple, depth: usize, now: u64) -> bool {
        if let Some(proto) = rule.proto {
            if proto != flow.protocol {
                return false;
            }
        }
        if let Some(from) = &rule.from {
            if !self.endpoint_matches(from, flow.src_ip, flow.src_port) {
                return false;
            }
        }
        if let Some(to) = &rule.to {
            if !self.endpoint_matches(to, flow.dst_ip, flow.dst_port) {
                return false;
            }
        }
        rule.withs
            .iter()
            .all(|call| self.call_matches(call, flow, depth, now))
    }

    fn endpoint_matches(
        &self,
        endpoint: &Endpoint,
        addr: identxx_proto::Ipv4Addr,
        port: u16,
    ) -> bool {
        let addr_match = match &endpoint.addr {
            AddrSpec::Any => true,
            AddrSpec::Host(h) => *h == addr,
            AddrSpec::Cidr {
                network,
                prefix_len,
            } => addr.in_prefix(*network, *prefix_len),
            AddrSpec::Table(name) => match self.ruleset.tables.get(name) {
                Some(table) => table.contains(addr, &self.ruleset.tables),
                None => false,
            },
        };
        let addr_match = if endpoint.negate {
            !addr_match
        } else {
            addr_match
        };
        if !addr_match {
            return false;
        }
        match &endpoint.port {
            None => true,
            Some(PortSpec::Number(p)) => port == *p,
            Some(PortSpec::Range(lo, hi)) => port >= *lo && port <= *hi,
            Some(PortSpec::Named(name)) => match resolve_port(name) {
                Some(p) => port == p,
                None => false,
            },
        }
    }

    /// Resolves a function argument to a string value, or `None` if the
    /// referenced information is absent.
    fn resolve_arg(&self, arg: &FnArg) -> Option<String> {
        match arg {
            FnArg::Literal(text) => Some(text.clone()),
            FnArg::MacroRef(name) => self.ruleset.macros.get(name).cloned(),
            FnArg::DictRef { concat, dict, key } => match dict.as_str() {
                "src" => self.lookup_response(self.src, key, *concat),
                "dst" => self.lookup_response(self.dst, key, *concat),
                other => self
                    .ruleset
                    .dicts
                    .get(other)
                    .and_then(|d| d.get(key))
                    .map(str::to_string),
            },
        }
    }

    fn lookup_response(
        &self,
        response: Option<&Response>,
        key: &str,
        concat: bool,
    ) -> Option<String> {
        let response = response?;
        if concat {
            response.concatenated(key)
        } else {
            response.latest(key).map(str::to_string)
        }
    }

    /// Resolves the *list* form of an argument, used by `member`.
    ///
    /// Resolution order: a context-provided named list, a macro, a table
    /// (entries rendered as text), and finally the resolved value itself split
    /// as a whitespace/brace list.
    fn resolve_list(&self, arg: &FnArg) -> Vec<String> {
        if let FnArg::Literal(name) = arg {
            if let Some(list) = self.core.named_lists.get(name) {
                return list.clone();
            }
            if let Some(macro_text) = self.ruleset.macros.get(name) {
                return parse_list_literal(macro_text);
            }
            if let Some(table) = self.ruleset.tables.get(name) {
                return table.entries().iter().map(|e| format!("{e:?}")).collect();
            }
        }
        match self.resolve_arg(arg) {
            Some(text) => parse_list_literal(&text),
            None => Vec::new(),
        }
    }

    fn call_matches(&self, call: &FnCall, flow: &FiveTuple, depth: usize, now: u64) -> bool {
        match call.name.as_str() {
            "eq" | "ne" | "gt" | "lt" | "gte" | "lte" => {
                if call.args.len() != 2 {
                    return false;
                }
                let a = self.resolve_arg(&call.args[0]);
                let b = self.resolve_arg(&call.args[1]);
                let (a, b) = match (a, b) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return false,
                };
                match call.name.as_str() {
                    "eq" => a == b,
                    "ne" => a != b,
                    name => match numeric_cmp(&a, &b) {
                        Some(ord) => match name {
                            "gt" => ord == Ordering::Greater,
                            "lt" => ord == Ordering::Less,
                            "gte" => ord != Ordering::Less,
                            "lte" => ord != Ordering::Greater,
                            _ => false,
                        },
                        None => false,
                    },
                }
            }
            "exists" => {
                // exists(@src[key]) — true when the key is present at all.
                call.args.len() == 1 && self.resolve_arg(&call.args[0]).is_some()
            }
            "member" => {
                if call.args.len() != 2 {
                    return false;
                }
                let value = match self.resolve_arg(&call.args[0]) {
                    Some(v) => v,
                    None => return false,
                };
                let list = self.resolve_list(&call.args[1]);
                if list.is_empty() {
                    return false;
                }
                // The first argument may itself be a multi-valued list (e.g. a
                // user belonging to several groups).
                value
                    .split_whitespace()
                    .any(|v| list.iter().any(|m| m == v))
            }
            "includes" => {
                if call.args.len() != 2 {
                    return false;
                }
                let haystack = match self.resolve_arg(&call.args[0]) {
                    Some(v) => v,
                    None => return false,
                };
                let needle = match self.resolve_arg(&call.args[1]) {
                    Some(v) => v,
                    None => return false,
                };
                haystack.split_whitespace().any(|item| item == needle)
            }
            "allowed" => {
                if call.args.len() != 1 || depth >= MAX_ALLOWED_DEPTH {
                    return false;
                }
                let requirements = match self.resolve_arg(&call.args[0]) {
                    Some(v) => v,
                    None => return false,
                };
                let sub_ruleset = match self.core.requirements.parse(&requirements) {
                    Some(rs) => rs,
                    // Malformed delegated rules never grant access.
                    None => return false,
                };
                // The delegated rule set is evaluated with the same responses
                // and trusted keys but its *own* tables/dicts/macros. The
                // shared core is an `Arc`, so recursion costs one refcount
                // bump instead of cloning registries and lists, and repeated
                // requirement strings skip the parser entirely.
                let sub_ctx = EvalContext {
                    ruleset: sub_ruleset.as_ref(),
                    src: self.src,
                    dst: self.dst,
                    core: Arc::clone(&self.core),
                };
                sub_ctx
                    .evaluate_rules(&sub_ruleset.rules, flow, depth + 1, now)
                    .decision
                    .is_pass()
            }
            "verify" => {
                if call.args.len() < 3 {
                    return false;
                }
                let sig = match self.resolve_arg(&call.args[0]) {
                    Some(v) => v,
                    None => return false,
                };
                let key_text = match self.resolve_arg(&call.args[1]) {
                    Some(v) => v,
                    None => return false,
                };
                // The key may be raw hex (from a dict) or the name of a key in
                // the trusted-key registry.
                let key_hex = match self.core.key_registry.resolve(&key_text) {
                    Some(k) => k.to_hex(),
                    None => key_text,
                };
                let mut data = Vec::with_capacity(call.args.len() - 2);
                for arg in &call.args[2..] {
                    match self.resolve_arg(arg) {
                        Some(v) => data.push(v),
                        None => return false,
                    }
                }
                match &self.core.verify_cache {
                    Some(cache) => cache.verify_hex_at(&sig, &key_hex, &data, now).is_valid(),
                    None => verify_bundle_hex_at(&sig, &key_hex, &data, now).is_ok(),
                }
            }
            other => match self.core.functions.get(other) {
                Some(f) => {
                    let resolved: Vec<Option<String>> =
                        call.args.iter().map(|a| self.resolve_arg(a)).collect();
                    f(&resolved)
                }
                // Unknown functions never match: an administrator typo must
                // fail closed for `pass` rules.
                None => false,
            },
        }
    }
}

impl std::fmt::Debug for EvalContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalContext")
            .field("rules", &self.ruleset.rules.len())
            .field("has_src", &self.src.is_some())
            .field("has_dst", &self.dst.is_some())
            .field("default", &self.core.default_decision)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use identxx_crypto::{sign_bundle_hex, KeyPair};
    use identxx_proto::Section;

    fn response_with(flow: FiveTuple, pairs: &[(&str, &str)]) -> Response {
        let mut r = Response::new(flow);
        let mut s = Section::new();
        for (k, v) in pairs {
            s.push(*k, *v);
        }
        r.push_section(s);
        r
    }

    fn flow_to_server() -> FiveTuple {
        FiveTuple::tcp([192, 168, 0, 10], 50123, [192, 168, 1, 1], 445)
    }

    #[test]
    fn last_match_wins() {
        let rs = parse_ruleset("block all\npass all\n").unwrap();
        let ctx = EvalContext::new(&rs);
        let v = ctx.evaluate(&flow_to_server());
        assert_eq!(v.decision, Decision::Pass);
        assert_eq!(v.matched_rule, Some(1));
        assert_eq!(v.rules_evaluated, 2);
    }

    #[test]
    fn quick_stops_evaluation() {
        let rs = parse_ruleset("block quick all\npass all\n").unwrap();
        let ctx = EvalContext::new(&rs);
        let v = ctx.evaluate(&flow_to_server());
        assert_eq!(v.decision, Decision::Block);
        assert!(v.quick);
        assert_eq!(v.rules_evaluated, 1);
    }

    #[test]
    fn default_applies_when_nothing_matches() {
        let rs = parse_ruleset("block from 10.9.9.9 to any\n").unwrap();
        let ctx = EvalContext::new(&rs);
        assert_eq!(ctx.evaluate(&flow_to_server()).decision, Decision::Pass);
        let ctx = EvalContext::new(&rs).with_default(Decision::Block);
        assert_eq!(ctx.evaluate(&flow_to_server()).decision, Decision::Block);
    }

    #[test]
    fn endpoint_table_and_negation() {
        let rs =
            parse_ruleset("table <lan> { 192.168.0.0/24 }\nblock all\npass from <lan> to !<lan>\n")
                .unwrap();
        let ctx = EvalContext::new(&rs);
        // lan -> outside: pass
        let outbound = FiveTuple::tcp([192, 168, 0, 10], 1000, [8, 8, 8, 8], 443);
        assert_eq!(ctx.evaluate(&outbound).decision, Decision::Pass);
        // lan -> lan: the negated `to` does not match, so block.
        let internal = FiveTuple::tcp([192, 168, 0, 10], 1000, [192, 168, 0, 20], 443);
        assert_eq!(ctx.evaluate(&internal).decision, Decision::Block);
        // outside -> outside: `from` does not match, block.
        let external = FiveTuple::tcp([8, 8, 8, 8], 1000, [9, 9, 9, 9], 443);
        assert_eq!(ctx.evaluate(&external).decision, Decision::Block);
    }

    #[test]
    fn port_constraints() {
        let rs = parse_ruleset("block all\npass from any to any port http\n").unwrap();
        let ctx = EvalContext::new(&rs);
        let web = FiveTuple::tcp([1, 1, 1, 1], 999, [2, 2, 2, 2], 80);
        let ssh = FiveTuple::tcp([1, 1, 1, 1], 999, [2, 2, 2, 2], 22);
        assert_eq!(ctx.evaluate(&web).decision, Decision::Pass);
        assert_eq!(ctx.evaluate(&ssh).decision, Decision::Block);

        let rs = parse_ruleset("block all\npass from any to any port 1000:2000\n").unwrap();
        let ctx = EvalContext::new(&rs);
        let in_range = FiveTuple::tcp([1, 1, 1, 1], 999, [2, 2, 2, 2], 1500);
        let out_of_range = FiveTuple::tcp([1, 1, 1, 1], 999, [2, 2, 2, 2], 2500);
        assert_eq!(ctx.evaluate(&in_range).decision, Decision::Pass);
        assert_eq!(ctx.evaluate(&out_of_range).decision, Decision::Block);
    }

    #[test]
    fn proto_constraint() {
        let rs = parse_ruleset("block all\npass proto udp from any to any\n").unwrap();
        let ctx = EvalContext::new(&rs);
        let udp = FiveTuple::udp([1, 1, 1, 1], 53, [2, 2, 2, 2], 53);
        let tcp = FiveTuple::tcp([1, 1, 1, 1], 53, [2, 2, 2, 2], 53);
        assert_eq!(ctx.evaluate(&udp).decision, Decision::Pass);
        assert_eq!(ctx.evaluate(&tcp).decision, Decision::Block);
    }

    #[test]
    fn eq_and_numeric_predicates() {
        let rs = parse_ruleset(
            "block all\npass all with eq(@src[name], skype) with gte(@src[version], 200)\n",
        )
        .unwrap();
        let flow = flow_to_server();
        let new_skype = response_with(flow, &[("name", "skype"), ("version", "210")]);
        let old_skype = response_with(flow, &[("name", "skype"), ("version", "150")]);
        let firefox = response_with(flow, &[("name", "firefox"), ("version", "300")]);
        let dst = Response::new(flow);

        let ctx = EvalContext::new(&rs).with_responses(&new_skype, &dst);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Pass);
        let ctx = EvalContext::new(&rs).with_responses(&old_skype, &dst);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
        let ctx = EvalContext::new(&rs).with_responses(&firefox, &dst);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
    }

    #[test]
    fn missing_information_fails_closed() {
        let rs = parse_ruleset("block all\npass all with eq(@src[name], skype)\n").unwrap();
        let flow = flow_to_server();
        // No responses attached at all.
        let ctx = EvalContext::new(&rs);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
        // Response present but key missing.
        let src = response_with(flow, &[("userID", "alice")]);
        let dst = Response::new(flow);
        let ctx = EvalContext::new(&rs).with_responses(&src, &dst);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
    }

    #[test]
    fn member_with_macro_and_named_list() {
        let rs = parse_ruleset(
            "allowed = \"{ http ssh }\"\nblock all\npass all with member(@src[name], $allowed)\n",
        )
        .unwrap();
        let flow = flow_to_server();
        let http = response_with(flow, &[("name", "http")]);
        let skype = response_with(flow, &[("name", "skype")]);
        let dst = Response::new(flow);
        let ctx = EvalContext::new(&rs).with_responses(&http, &dst);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Pass);
        let ctx = EvalContext::new(&rs).with_responses(&skype, &dst);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);

        // member(@src[groupID], users) with a named list provided by the
        // controller configuration.
        let rs = parse_ruleset("block all\npass all with member(@src[groupID], users)\n").unwrap();
        let alice = response_with(flow, &[("groupID", "users wheel")]);
        let guest = response_with(flow, &[("groupID", "guests")]);
        let ctx = EvalContext::new(&rs)
            .with_responses(&alice, &dst)
            .with_named_list("users", vec!["users".to_string()]);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Pass);
        let ctx = EvalContext::new(&rs)
            .with_responses(&guest, &dst)
            .with_named_list("users", vec!["users".to_string()]);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
    }

    #[test]
    fn includes_checks_list_values() {
        let rs =
            parse_ruleset("block all\npass all with includes(@dst[os-patch], MS08-067)\n").unwrap();
        let flow = flow_to_server();
        let src = Response::new(flow);
        let patched = response_with(flow, &[("os-patch", "MS08-001 MS08-067 MS09-001")]);
        let unpatched = response_with(flow, &[("os-patch", "MS08-001")]);
        let ctx = EvalContext::new(&rs).with_responses(&src, &patched);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Pass);
        let ctx = EvalContext::new(&rs).with_responses(&src, &unpatched);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
    }

    #[test]
    fn latest_section_value_is_used_and_star_concatenates() {
        let rs_latest =
            parse_ruleset("block all\npass all with eq(@src[site], branch-b)\n").unwrap();
        let rs_concat =
            parse_ruleset("block all\npass all with eq(*@src[site], branch-a branch-b)\n").unwrap();
        let flow = flow_to_server();
        let mut src = Response::new(flow);
        let mut s1 = Section::new();
        s1.push("site", "branch-a");
        src.push_section(s1);
        let mut s2 = Section::new();
        s2.push("site", "branch-b");
        src.push_section(s2);
        let dst = Response::new(flow);

        let ctx = EvalContext::new(&rs_latest).with_responses(&src, &dst);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Pass);
        let ctx = EvalContext::new(&rs_concat).with_responses(&src, &dst);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Pass);
    }

    #[test]
    fn allowed_evaluates_delegated_requirements() {
        let rs = parse_ruleset("block all\npass all with allowed(@dst[requirements])\n").unwrap();
        let flow = FiveTuple::tcp([10, 0, 0, 1], 9999, [10, 0, 0, 2], 7000);
        let src = Response::new(flow);
        // Requirements that allow only port 7000.
        let good = response_with(
            flow,
            &[("requirements", "block all\npass from any to any port 7000")],
        );
        let bad = response_with(
            flow,
            &[("requirements", "block all\npass from any to any port 22")],
        );
        let malformed = response_with(flow, &[("requirements", "pass from !!!")]);
        let ctx = EvalContext::new(&rs).with_responses(&src, &good);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Pass);
        let ctx = EvalContext::new(&rs).with_responses(&src, &bad);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
        let ctx = EvalContext::new(&rs).with_responses(&src, &malformed);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
    }

    #[test]
    fn repeated_requirements_parse_once() {
        let rs = parse_ruleset("block all\npass all with allowed(@dst[requirements])\n").unwrap();
        let flow = FiveTuple::tcp([10, 0, 0, 1], 9999, [10, 0, 0, 2], 7000);
        let src = Response::new(flow);
        let dst = response_with(
            flow,
            &[("requirements", "block all\npass from any to any port 7000")],
        );
        let ctx = EvalContext::new(&rs).with_responses(&src, &dst);
        assert_eq!(ctx.requirements_parsed(), 0);
        for _ in 0..10 {
            assert_eq!(ctx.evaluate(&flow).decision, Decision::Pass);
        }
        assert_eq!(ctx.requirements_parsed(), 1, "same text must parse once");
        // A different requirement string is a fresh parse…
        let other = response_with(
            flow,
            &[("requirements", "block all\npass from any to any port 22")],
        );
        let ctx2 = EvalContext {
            ruleset: ctx.ruleset,
            src: Some(&src),
            dst: Some(&other),
            core: Arc::clone(&ctx.core),
        };
        assert_eq!(ctx2.evaluate(&flow).decision, Decision::Block);
        assert_eq!(ctx2.requirements_parsed(), 2);
        // …and malformed text is parsed (and rejected) exactly once too.
        let malformed = response_with(flow, &[("requirements", "pass from !!!")]);
        let ctx3 = EvalContext {
            dst: Some(&malformed),
            ..ctx2.clone()
        };
        assert_eq!(ctx3.evaluate(&flow).decision, Decision::Block);
        assert_eq!(ctx3.evaluate(&flow).decision, Decision::Block);
        assert_eq!(ctx3.requirements_parsed(), 3);
    }

    #[test]
    fn requirement_memo_is_bounded_against_hostile_responses() {
        // A compromised host answering every flow with a unique requirements
        // string must not grow the memo without limit: past the cap, new
        // strings are parsed statelessly while cached ones keep hitting.
        let core = EvalCore::new();
        for i in 0..MAX_CACHED_REQUIREMENTS + 50 {
            let unique = format!("block all\npass from any to any port {}\n", 1 + (i % 60000));
            core.requirements.parse(&unique);
        }
        assert!(core.requirements.len() <= MAX_CACHED_REQUIREMENTS);
        // Beyond the cap a novel string re-parses on every evaluation…
        let uncached = "block all\npass from any to any port 61234\n";
        let before = core.requirements.parse_count();
        core.requirements.parse(uncached);
        core.requirements.parse(uncached);
        assert_eq!(core.requirements.parse_count(), before + 2);
        // …while an already-cached string still parses zero times.
        let cached = "block all\npass from any to any port 1\n";
        let before = core.requirements.parse_count();
        assert!(core.requirements.parse(cached).is_some());
        assert_eq!(core.requirements.parse_count(), before);
    }

    #[test]
    fn allowed_recursion_is_bounded() {
        // Requirements that themselves call allowed() on the same key recurse;
        // the evaluator must terminate and fail closed.
        let rs = parse_ruleset("block all\npass all with allowed(@dst[requirements])\n").unwrap();
        let flow = flow_to_server();
        let src = Response::new(flow);
        let recursive = response_with(
            flow,
            &[(
                "requirements",
                "block all\npass all with allowed(@dst[requirements])",
            )],
        );
        let ctx = EvalContext::new(&rs).with_responses(&src, &recursive);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
    }

    #[test]
    fn verify_checks_signatures_from_dict_keys() {
        let research = KeyPair::from_seed(b"research-group-key");
        let flow = FiveTuple::tcp([10, 0, 0, 1], 9999, [10, 0, 0, 2], 7000);
        let requirements = "block all\npass from any to any port 7000";
        let exe_hash = "9f86d081884c7d65";
        let sig = sign_bundle_hex(&research, &[exe_hash, "research-app", requirements]);

        let policy = format!(
            "dict <pubkeys> {{ research : {} }}\nblock all\npass all \\\n  with verify(@dst[req-sig], @pubkeys[research], @dst[exe-hash], @dst[app-name], @dst[requirements])\n",
            research.public().to_hex()
        );
        let rs = parse_ruleset(&policy).unwrap();
        let src = Response::new(flow);
        let good = response_with(
            flow,
            &[
                ("req-sig", sig.as_str()),
                ("exe-hash", exe_hash),
                ("app-name", "research-app"),
                ("requirements", requirements),
            ],
        );
        let ctx = EvalContext::new(&rs).with_responses(&src, &good);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Pass);

        // Tampering with the requirements invalidates the signature.
        let tampered = response_with(
            flow,
            &[
                ("req-sig", sig.as_str()),
                ("exe-hash", exe_hash),
                ("app-name", "research-app"),
                ("requirements", "pass all"),
            ],
        );
        let ctx = EvalContext::new(&rs).with_responses(&src, &tampered);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);

        // A signature from an untrusted key is rejected.
        let attacker = KeyPair::from_seed(b"attacker");
        let forged = sign_bundle_hex(&attacker, &[exe_hash, "research-app", requirements]);
        let forged_resp = response_with(
            flow,
            &[
                ("req-sig", forged.as_str()),
                ("exe-hash", exe_hash),
                ("app-name", "research-app"),
                ("requirements", requirements),
            ],
        );
        let ctx = EvalContext::new(&rs).with_responses(&src, &forged_resp);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
    }

    #[test]
    fn verify_resolves_registry_names() {
        let secur = KeyPair::from_seed(b"Secur");
        let flow = flow_to_server();
        let data = ["cafebabe", "thunderbird", "block all\npass all"];
        let sig = sign_bundle_hex(&secur, &data);
        let rs = parse_ruleset(
            "block all\npass all with verify(@src[req-sig], Secur, @src[exe-hash], @src[app-name], @src[requirements])\n",
        )
        .unwrap();
        let src = response_with(
            flow,
            &[
                ("req-sig", sig.as_str()),
                ("exe-hash", "cafebabe"),
                ("app-name", "thunderbird"),
                ("requirements", "block all\npass all"),
            ],
        );
        let dst = Response::new(flow);
        let mut registry = KeyRegistry::new();
        registry.insert("Secur", secur.public());
        let ctx = EvalContext::new(&rs)
            .with_responses(&src, &dst)
            .with_key_registry(registry);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Pass);

        // Without the registry the name cannot be resolved.
        let ctx = EvalContext::new(&rs).with_responses(&src, &dst);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
    }

    #[test]
    fn verify_windowed_bundles_respect_the_logical_clock() {
        use identxx_crypto::sign_bundle_windowed;

        let secur = KeyPair::from_seed(b"Secur");
        let flow = flow_to_server();
        let data = ["cafebabe", "thunderbird", "block all\npass all"];
        let bundle = sign_bundle_windowed(&secur, "Secur", 1_000, 2_000, &data);
        let rs = parse_ruleset(
            "block all\npass all with verify(@src[req-sig], Secur, @src[exe-hash], @src[app-name], @src[requirements])\n",
        )
        .unwrap();
        let src = response_with(
            flow,
            &[
                ("req-sig", bundle.to_hex().as_str()),
                ("exe-hash", "cafebabe"),
                ("app-name", "thunderbird"),
                ("requirements", "block all\npass all"),
            ],
        );
        let dst = Response::new(flow);
        let mut registry = KeyRegistry::new();
        registry.insert("Secur", secur.public());
        let cache = Arc::new(VerifyCache::new());
        let ctx = EvalContext::new(&rs)
            .with_responses(&src, &dst)
            .with_key_registry(registry)
            .with_verify_cache(Arc::clone(&cache));

        // Inside the window: pass (fresh, then cached).
        assert_eq!(ctx.evaluate_at(&flow, 1_500).decision, Decision::Pass);
        assert_eq!(ctx.evaluate_at(&flow, 1_999).decision, Decision::Pass);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        // Before / at-or-after the window: block, even though the verdict is
        // cached.
        assert_eq!(ctx.evaluate_at(&flow, 999).decision, Decision::Block);
        assert_eq!(ctx.evaluate_at(&flow, 2_000).decision, Decision::Block);
        // `evaluate` (t=0) is before the window too.
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
        let stats = cache.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.not_yet_valid, 2);
    }

    #[test]
    fn unknown_function_fails_closed_but_user_functions_work() {
        let rs = parse_ruleset("block all\npass all with business-hours()\n").unwrap();
        let flow = flow_to_server();
        let ctx = EvalContext::new(&rs);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);

        let mut funcs = FunctionRegistry::new();
        funcs.register("business-hours", |_args| true);
        let ctx = EvalContext::new(&rs).with_functions(funcs);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Pass);
    }

    #[test]
    fn exists_predicate() {
        let rs = parse_ruleset("block all\npass all with exists(@src[user-initiated])\n").unwrap();
        let flow = flow_to_server();
        let clicked = response_with(flow, &[("user-initiated", "true")]);
        let background = response_with(flow, &[("name", "updater")]);
        let dst = Response::new(flow);
        let ctx = EvalContext::new(&rs).with_responses(&clicked, &dst);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Pass);
        let ctx = EvalContext::new(&rs).with_responses(&background, &dst);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
    }

    #[test]
    fn keep_state_is_reported() {
        let rs = parse_ruleset("block all\npass from any to any port 80 keep state\n").unwrap();
        let ctx = EvalContext::new(&rs);
        let web = FiveTuple::tcp([1, 1, 1, 1], 999, [2, 2, 2, 2], 80);
        let v = ctx.evaluate(&web);
        assert!(v.keep_state);
        assert_eq!(v.decision, Decision::Pass);
        let other = FiveTuple::tcp([1, 1, 1, 1], 999, [2, 2, 2, 2], 81);
        assert!(!ctx.evaluate(&other).keep_state);
    }

    #[test]
    fn wrong_arity_fails_closed() {
        let rs = parse_ruleset("block all\npass all with eq(@src[name])\n").unwrap();
        let flow = flow_to_server();
        let src = response_with(flow, &[("name", "skype")]);
        let dst = Response::new(flow);
        let ctx = EvalContext::new(&rs).with_responses(&src, &dst);
        assert_eq!(ctx.evaluate(&flow).decision, Decision::Block);
    }
}
