//! Function predicates used in `with` clauses.
//!
//! The paper predefines `eq`, `gt`, `lt`, `gte`, `lte`, `member`, `allowed`
//! and `verify` (§3.3) and uses `includes` in Fig. 8. "Functions are
//! user-definable and new functions can be added" — the [`FunctionRegistry`]
//! holds such user-defined predicates; the predefined ones are implemented in
//! [`crate::eval`] because they need access to the evaluation context
//! (`allowed` re-enters the evaluator, `verify` needs the trusted-key
//! registry).

use std::collections::BTreeMap;
use std::sync::Arc;

/// A user-defined predicate.
///
/// The function receives the already-resolved arguments: `None` means the
/// referenced key was absent from the response (or the macro/dict was
/// undefined). By convention predicates should return `false` when required
/// information is missing.
pub type UserFunction = Arc<dyn Fn(&[Option<String>]) -> bool + Send + Sync>;

/// A registry of user-defined functions, keyed by name.
///
/// Predefined function names cannot be overridden: the security semantics of
/// `verify`/`allowed` must not be silently replaced by configuration.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    functions: BTreeMap<String, UserFunction>,
}

/// Names of the built-in functions (not overridable).
pub const BUILTIN_NAMES: &[&str] = &[
    "eq", "ne", "gt", "lt", "gte", "lte", "member", "includes", "allowed", "verify", "exists",
];

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// Registers a user function. Returns `false` (and does not register) if
    /// the name collides with a built-in.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F) -> bool
    where
        F: Fn(&[Option<String>]) -> bool + Send + Sync + 'static,
    {
        let name = name.into();
        if BUILTIN_NAMES.contains(&name.as_str()) {
            return false;
        }
        self.functions.insert(name, Arc::new(f));
        true
    }

    /// Looks up a user function.
    pub fn get(&self, name: &str) -> Option<&UserFunction> {
        self.functions.get(name)
    }

    /// Whether `name` is a built-in function.
    pub fn is_builtin(name: &str) -> bool {
        BUILTIN_NAMES.contains(&name)
    }

    /// Number of registered user functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether no user functions are registered.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("functions", &self.functions.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Iterates over the elements of a whitespace- (and optionally brace-)
/// delimited list literal without allocating: `"{ http ssh }"` yields
/// `"http"`, `"ssh"`.
///
/// This is the borrowed core of [`parse_list_literal`]; the compiled
/// evaluator uses it directly so `member` over a response value performs no
/// per-evaluation allocation.
pub fn list_items(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| c.is_whitespace() || c == ',')
        .map(|t| t.trim_matches(|c| c == '{' || c == '}' || c == ','))
        .filter(|t| !t.is_empty())
}

/// Splits a whitespace- (and optionally brace-) delimited list literal into
/// its elements: `"{ http ssh }"` → `["http", "ssh"]`.
///
/// This is how macro values are interpreted when used as the list argument of
/// `member` (Fig. 2: `member(@src[name], $allowed)` with
/// `allowed = "{ http ssh }"`).
pub fn parse_list_literal(text: &str) -> Vec<String> {
    list_items(text).map(str::to_string).collect()
}

/// Numeric comparison used by `gt`/`lt`/`gte`/`lte`.
///
/// Both operands must parse as signed integers; otherwise the comparison is
/// `None` (and the predicate is false). Version strings like `2.1.0` do not
/// parse — the paper's example uses integer versions (`lt(@src[version],
/// 200)`).
pub fn numeric_cmp(a: &str, b: &str) -> Option<std::cmp::Ordering> {
    let a: i64 = a.trim().parse().ok()?;
    let b: i64 = b.trim().parse().ok()?;
    Some(a.cmp(&b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_registers_and_rejects_builtins() {
        let mut reg = FunctionRegistry::new();
        assert!(reg.register("is-business-hours", |_args| true));
        assert!(!reg.register("verify", |_args| true));
        assert!(!reg.register("eq", |_args| true));
        assert!(reg.get("is-business-hours").is_some());
        assert!(reg.get("verify").is_none());
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn user_function_receives_resolved_args() {
        let mut reg = FunctionRegistry::new();
        reg.register("first-is-alice", |args: &[Option<String>]| {
            args.first()
                .and_then(|a| a.as_deref())
                .map(|v| v == "alice")
                .unwrap_or(false)
        });
        let f = reg.get("first-is-alice").unwrap();
        assert!(f(&[Some("alice".to_string())]));
        assert!(!f(&[Some("bob".to_string())]));
        assert!(!f(&[None]));
        assert!(!f(&[]));
    }

    #[test]
    fn list_literal_parsing() {
        assert_eq!(parse_list_literal("{ http ssh }"), vec!["http", "ssh"]);
        assert_eq!(parse_list_literal("http ssh"), vec!["http", "ssh"]);
        assert_eq!(parse_list_literal("{http,ssh}"), vec!["http", "ssh"]);
        assert_eq!(parse_list_literal(""), Vec::<String>::new());
        assert_eq!(parse_list_literal("  {  }  "), Vec::<String>::new());
        assert_eq!(parse_list_literal("single"), vec!["single"]);
    }

    #[test]
    fn numeric_comparison() {
        use std::cmp::Ordering::*;
        assert_eq!(numeric_cmp("100", "200"), Some(Less));
        assert_eq!(numeric_cmp("210", "200"), Some(Greater));
        assert_eq!(numeric_cmp("200", "200"), Some(Equal));
        assert_eq!(numeric_cmp(" 7 ", "7"), Some(Equal));
        assert_eq!(numeric_cmp("2.1.0", "200"), None);
        assert_eq!(numeric_cmp("abc", "200"), None);
    }

    #[test]
    fn builtin_names_are_known() {
        assert!(FunctionRegistry::is_builtin("verify"));
        assert!(FunctionRegistry::is_builtin("allowed"));
        assert!(!FunctionRegistry::is_builtin("frobnicate"));
    }

    #[test]
    fn debug_lists_function_names() {
        let mut reg = FunctionRegistry::new();
        reg.register("custom", |_| true);
        assert!(format!("{reg:?}").contains("custom"));
    }
}
