//! Lexer for PF+=2 policy text.
//!
//! The lexer performs three preprocessing steps that match how PF reads its
//! configuration:
//!
//! 1. `#` comments run to the end of the line (except inside quoted strings),
//! 2. a trailing `\` folds the next line onto the current one (line
//!    continuations — used heavily in the paper's examples),
//! 3. the remaining text is tokenized; newlines are treated as ordinary
//!    whitespace (rule boundaries are recovered syntactically by the parser).
//!
//! Every token records the (1-based) source line and column it started on so
//! errors and analyzer diagnostics can point back at the offending
//! configuration text.

use crate::error::PfError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// A bare word: keyword, identifier, address, number, or key text.
    Word(String),
    /// A quoted string (quotes removed).
    Str(String),
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `!`
    Bang,
    /// `=`
    Equals,
    /// `@`
    At,
    /// `$`
    Dollar,
    /// `*`
    Star,
}

/// A token plus the source position it started on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based line number in the original (pre-continuation-folding) text.
    pub line: usize,
    /// 1-based column (in characters) on that line.
    pub col: usize,
}

/// Characters that terminate a bare word.
fn is_word_char(c: char) -> bool {
    !c.is_whitespace() && !"<>{}()[],:!=@$*\"#".contains(c)
}

/// Tokenizes PF+=2 source text.
pub fn tokenize(input: &str) -> Result<Vec<SpannedTok>, PfError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    // Index of the first character of the current line; columns are derived
    // from it so every token push doesn't have to maintain its own counter.
    let mut line_start = 0usize;

    macro_rules! push {
        ($tok:expr, $line:expr, $start:expr) => {
            tokens.push(SpannedTok {
                tok: $tok,
                line: $line,
                col: $start - line_start + 1,
            })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '\\' => {
                // Line continuation: a backslash followed (possibly after
                // spaces) by a newline. A backslash anywhere else is part of a
                // word (e.g. inside opaque signature material).
                let mut j = i + 1;
                while j < chars.len() && (chars[j] == ' ' || chars[j] == '\t' || chars[j] == '\r') {
                    j += 1;
                }
                if j < chars.len() && chars[j] == '\n' {
                    line += 1;
                    i = j + 1;
                    line_start = i;
                } else if j >= chars.len() {
                    i = j;
                } else {
                    // Treat as the start of a word.
                    let start_line = line;
                    let start = i;
                    let mut word = String::from('\\');
                    i += 1;
                    while i < chars.len() && is_word_char(chars[i]) {
                        word.push(chars[i]);
                        i += 1;
                    }
                    push!(Tok::Word(word), start_line, start);
                }
            }
            '#' => {
                // Comment to end of line.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '"' => {
                let start_line = line;
                let start = i;
                let start_col = start - line_start + 1;
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() {
                        return Err(PfError::lex(start_line, "unterminated string"));
                    }
                    let c = chars[i];
                    if c == '"' {
                        i += 1;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                        line_start = i + 1;
                    }
                    // A backslash-newline inside a string is a continuation.
                    if c == '\\' && i + 1 < chars.len() && chars[i + 1] == '\n' {
                        line += 1;
                        i += 2;
                        line_start = i;
                        continue;
                    }
                    s.push(c);
                    i += 1;
                }
                tokens.push(SpannedTok {
                    tok: Tok::Str(s),
                    line: start_line,
                    col: start_col,
                });
            }
            '<' => {
                push!(Tok::Lt, line, i);
                i += 1;
            }
            '>' => {
                push!(Tok::Gt, line, i);
                i += 1;
            }
            '{' => {
                push!(Tok::LBrace, line, i);
                i += 1;
            }
            '}' => {
                push!(Tok::RBrace, line, i);
                i += 1;
            }
            '(' => {
                push!(Tok::LParen, line, i);
                i += 1;
            }
            ')' => {
                push!(Tok::RParen, line, i);
                i += 1;
            }
            '[' => {
                push!(Tok::LBracket, line, i);
                i += 1;
            }
            ']' => {
                push!(Tok::RBracket, line, i);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma, line, i);
                i += 1;
            }
            ':' => {
                push!(Tok::Colon, line, i);
                i += 1;
            }
            '!' => {
                push!(Tok::Bang, line, i);
                i += 1;
            }
            '=' => {
                push!(Tok::Equals, line, i);
                i += 1;
            }
            '@' => {
                push!(Tok::At, line, i);
                i += 1;
            }
            '$' => {
                push!(Tok::Dollar, line, i);
                i += 1;
            }
            '*' => {
                push!(Tok::Star, line, i);
                i += 1;
            }
            _ => {
                let start_line = line;
                let start = i;
                let mut word = String::new();
                while i < chars.len() && is_word_char(chars[i]) {
                    word.push(chars[i]);
                    i += 1;
                }
                if word.is_empty() {
                    return Err(PfError::lex(line, format!("unexpected character {c:?}")));
                }
                push!(Tok::Word(word), start_line, start);
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(input: &str) -> Vec<Tok> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn tokenizes_simple_rule() {
        let toks = words("block all");
        assert_eq!(
            toks,
            vec![Tok::Word("block".into()), Tok::Word("all".into())]
        );
    }

    #[test]
    fn comments_are_stripped() {
        let toks = words("# default deny\nblock all # everything\n");
        assert_eq!(
            toks,
            vec![Tok::Word("block".into()), Tok::Word("all".into())]
        );
    }

    #[test]
    fn line_continuations_fold() {
        let toks = words("pass from any \\\n  to <mail-server> \\\n  keep state");
        assert_eq!(toks.len(), 9);
        assert_eq!(toks[0], Tok::Word("pass".into()));
        assert_eq!(toks[8], Tok::Word("state".into()));
    }

    #[test]
    fn table_syntax_tokens() {
        let toks = words("table <mail-server> {192.168.42.32}");
        assert_eq!(
            toks,
            vec![
                Tok::Word("table".into()),
                Tok::Lt,
                Tok::Word("mail-server".into()),
                Tok::Gt,
                Tok::LBrace,
                Tok::Word("192.168.42.32".into()),
                Tok::RBrace,
            ]
        );
    }

    #[test]
    fn dict_reference_tokens() {
        let toks = words("eq(@src[app-name], pine)");
        assert_eq!(
            toks,
            vec![
                Tok::Word("eq".into()),
                Tok::LParen,
                Tok::At,
                Tok::Word("src".into()),
                Tok::LBracket,
                Tok::Word("app-name".into()),
                Tok::RBracket,
                Tok::Comma,
                Tok::Word("pine".into()),
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn star_and_dollar_and_bang() {
        let toks = words("*@src[userID] $allowed !<int_hosts>");
        assert_eq!(toks[0], Tok::Star);
        assert_eq!(toks[1], Tok::At);
        assert!(toks.contains(&Tok::Dollar));
        assert!(toks.contains(&Tok::Bang));
    }

    #[test]
    fn quoted_strings() {
        let toks = words("allowed = \"{ http ssh }\"");
        assert_eq!(
            toks,
            vec![
                Tok::Word("allowed".into()),
                Tok::Equals,
                Tok::Str("{ http ssh }".into()),
            ]
        );
    }

    #[test]
    fn unterminated_string_errors_with_line() {
        let err = tokenize("x = \"oops").unwrap_err();
        assert!(matches!(err, PfError::Lex { line: 1, .. }));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = tokenize("block all\npass all\n\nblock all\n").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[2].line, 2);
        assert_eq!(toks[4].line, 4);
    }

    #[test]
    fn columns_are_tracked() {
        let toks = tokenize("block all\n  pass from any\n").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (1, 7));
        assert_eq!((toks[2].line, toks[2].col), (2, 3));
        assert_eq!((toks[3].line, toks[3].col), (2, 8));
    }

    #[test]
    fn columns_after_continuation_restart() {
        let toks = tokenize("pass from any \\\n    to any\n").unwrap();
        // `to` starts the second physical line at column 5.
        let to = toks
            .iter()
            .find(|t| t.tok == Tok::Word("to".into()))
            .unwrap();
        assert_eq!((to.line, to.col), (2, 5));
    }

    #[test]
    fn cidr_and_version_numbers_are_words() {
        let toks = words("192.168.0.0/24 200");
        assert_eq!(
            toks,
            vec![Tok::Word("192.168.0.0/24".into()), Tok::Word("200".into())]
        );
    }

    #[test]
    fn comment_inside_string_is_preserved() {
        let toks = words("m = \"a # not a comment\"");
        assert_eq!(toks[2], Tok::Str("a # not a comment".into()));
    }

    #[test]
    fn hash_mid_word_starts_comment() {
        // Matches PF behaviour: `#` introduces a comment wherever it appears
        // outside a string.
        let toks = words("abc#def\nxyz");
        assert_eq!(toks, vec![Tok::Word("abc".into()), Tok::Word("xyz".into())]);
    }
}
