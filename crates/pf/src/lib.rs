//! # identxx-pf — the PF+=2 policy language
//!
//! PF+=2 is the paper's extension of OpenBSD's PF packet-filter language
//! (§3.3). It keeps PF's structure — rules read top-down, the **last matching
//! rule wins**, `quick` short-circuits — and its vocabulary of `table`s,
//! macros, `pass`/`block`, `from`/`to`, `port` and `keep state`, and adds:
//!
//! * the `dict` keyword for named dictionaries (e.g. trusted public keys),
//! * the `with` keyword introducing boolean function predicates over the
//!   `@src`/`@dst` dictionaries built from ident++ responses,
//! * `@src[key]`/`@dst[key]` indexing (latest value) and `*@src[key]`
//!   (concatenation of all sections' values),
//! * the built-in functions `eq`, `gt`, `lt`, `gte`, `lte`, `member`,
//!   `includes`, `allowed` and `verify`, plus user-definable functions.
//!
//! The crate contains a lexer, parser, AST, and evaluator for the language
//! subset exercised by every configuration file shown in the paper
//! (Figures 2–8), together with the `keep state` state table.
//!
//! ## Example
//!
//! ```
//! use identxx_pf::{parse_ruleset, EvalContext, Decision};
//! use identxx_proto::{FiveTuple, Response, Section, well_known};
//!
//! let policy = r#"
//! table <server> { 192.168.1.1 }
//! block all
//! pass from any to <server> port 80 with eq(@src[name], firefox) keep state
//! "#;
//! let ruleset = parse_ruleset(policy).unwrap();
//!
//! let flow = FiveTuple::tcp([10, 0, 0, 5], 50000, [192, 168, 1, 1], 80);
//! let mut src = Response::new(flow);
//! let mut s = Section::new();
//! s.push(well_known::APP_NAME, "firefox");
//! src.push_section(s);
//! let dst = Response::new(flow);
//!
//! let ctx = EvalContext::new(&ruleset).with_responses(&src, &dst);
//! let verdict = ctx.evaluate(&flow);
//! assert_eq!(verdict.decision, Decision::Pass);
//! assert!(verdict.keep_state);
//! ```

pub mod analyze;
pub mod ast;
pub mod compile;
pub mod dict;
pub mod error;
pub mod eval;
pub mod functions;
pub mod lexer;
pub mod matcher;
pub mod parser;
pub mod ruleset;
pub mod services;
pub mod state;
pub mod table;

pub use analyze::{analyze, AnalysisOptions, Category, Diagnostic, Severity};
pub use ast::{Action, AddrSpec, Endpoint, FnArg, FnCall, PortSpec, Rule, RuleSet, Span};
pub use compile::{CompiledPolicy, DeadRule, DeadRuleReason, PolicyCompiler};
pub use error::PfError;
pub use eval::{Decision, EvalContext, Verdict};
pub use matcher::{FieldSet, MatcherStats, UnmatchableReason};
pub use parser::parse_ruleset;
pub use ruleset::{ConfigFile, ConfigSet};
pub use state::{CacheGranularity, StateEntry, StateTable};
