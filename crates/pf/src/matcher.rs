//! The field-indexed matcher tree behind [`crate::compile::CompiledPolicy`].
//!
//! The compiled evaluator used to scan its candidate rules first-to-last
//! per flow; protocol bucketing and dead-rule elimination trimmed the scan
//! but left it O(rules). Production rule sets grow into the tens of
//! thousands of rules, and the controller sits on every flow-setup path, so
//! a linear scan is the product's latency floor. This module compiles the
//! lowered rules once into a **field-indexed matcher tree** in the style of
//! the xDS Unified Matcher: hash-dispatch tables over the cheapest
//! high-selectivity discriminators, nested value matchers for
//! response-valued predicates, and an ordered residual list for rules no
//! indexer can classify. Decision cost becomes a function of how many rules
//! *could* match a flow, not how many rules the policy has.
//!
//! # Tree shape
//!
//! The root fans out into one dispatch table per field, each one a
//! compile-time-sized hash map (or membership group) whose leaves are
//! sorted candidate-position lists:
//!
//! * **dst port** — rules with an exact `port p` on the `to` endpoint (or a
//!   range narrow enough to expand, ≤ [`RANGE_EXPAND_MAX`] ports) dispatch
//!   on `flow.dst_port`;
//! * **dst/src host** — rules pinning an endpoint to a single address (a
//!   host literal or a /32) dispatch on the flow address;
//! * **response values** — rules whose predicates include
//!   `eq(@side[key], lit)` dispatch on the memoized `latest(key)` response
//!   lookup, one nested exact-match table per `(side, key)` (at most
//!   [`MAX_RESP_TABLES`], most-populous first) — this is the xDS "nested
//!   matcher on a derived input";
//! * **host-set membership** — rules constraining an endpoint to a table
//!   (`from <lan>`) or a CIDR share one membership group per distinct set
//!   (at most [`MAX_ADDR_GROUPS`]); the group's binary-searched
//!   `FlatSet`/mask test runs once per flow, not once per rule;
//! * **protocol** — rules whose only discriminator is `proto p`;
//! * **residual** — everything else (negated endpoints, wide ranges,
//!   overflow past the table caps), kept in source order.
//!
//! Every rule lands in **exactly one** leaf, chosen by selectivity
//! (port > host > response value > set membership > protocol > residual),
//! so the per-flow candidate lists are disjoint. Rules that can never match
//! any flow (unresolvable named port, empty inclusive address set, inverted
//! port range) land in *no* leaf and are reported as unreachable — the
//! compiler turns them into dead-rule notes.
//!
//! # First-match preservation
//!
//! PF semantics are last-match-wins with `quick` short-circuit, i.e. the
//! deciding rule is a function of match **order**. The tree preserves order
//! exactly: every leaf entry is the rule's original position, each leaf list
//! is sorted ascending, and evaluation merges the (at most [`MAX_LISTS`])
//! active lists by **minimum position** — a k-way merge over disjoint
//! sorted lists. The merged stream visits exactly the union of candidate
//! rules in source order, so the existing match loop (track last match,
//! stop at `quick`) runs unchanged and decides identically to the linear
//! scan; `tests/compiled_equivalence.rs` pins interpreter ≡ linear ≡ tree
//! by property test.
//!
//! # Zero allocation
//!
//! All tables are built (and pre-sized) at compile time; evaluation only
//! *reads* them. `HashMap` lookups never allocate or rehash, membership
//! tests are binary searches over flattened sets, and the merge state is a
//! stack array of list views — `crates/pf/tests/compiled_alloc.rs` asserts
//! zero steady-state allocations through the tree path.

use std::collections::HashMap;

use identxx_proto::FiveTuple;

use crate::compile::{CAddr, CArg, CList, CPort, CPred, CRule, FlatSet, Side, Sym, SymbolTable};

/// Maximum distinct host-set / CIDR membership groups the tree dispatches
/// on. Groups are chosen most-populous-first; rules whose set is not chosen
/// fall through to the next discriminator (usually the residual list).
pub const MAX_ADDR_GROUPS: usize = 16;

/// Maximum distinct `(side, key)` response-value tables. Chosen
/// most-populous-first, like the address groups.
pub const MAX_RESP_TABLES: usize = 8;

/// Widest inclusive port range expanded into the dst-port table. Wider
/// ranges fall through to the next discriminator.
pub const RANGE_EXPAND_MAX: u32 = 16;

/// Upper bound on candidate lists a single flow can activate: one each for
/// the protocol, dst-port, dst-host and src-host tables, every address
/// group, every response table, and the residual list. The merge state is
/// sized by this bound, so evaluation needs no heap.
pub const MAX_LISTS: usize = 4 + MAX_ADDR_GROUPS + MAX_RESP_TABLES + 1;

// ---------------------------------------------------------------------------
// Field-inspection sets
// ---------------------------------------------------------------------------

/// The set of flow/response fields a rule (or a whole matcher subtree)
/// inspects while matching.
///
/// Computed for every compiled rule during tree construction and exposed via
/// [`crate::compile::CompiledPolicy::fields_inspected`]: a cached verdict is
/// only safe to replay across flows that agree on every inspected field, so
/// these sets are the work-list for per-rule cache granularity and the blame
/// source for `pfcheck --granularity`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FieldSet {
    bits: u8,
}

impl FieldSet {
    /// The empty set: the rule matches every flow without reading anything.
    pub const EMPTY: FieldSet = FieldSet { bits: 0 };
    /// The IP protocol.
    pub const PROTO: FieldSet = FieldSet { bits: 1 };
    /// The source address.
    pub const SRC_ADDR: FieldSet = FieldSet { bits: 2 };
    /// The source port.
    pub const SRC_PORT: FieldSet = FieldSet { bits: 4 };
    /// The destination address.
    pub const DST_ADDR: FieldSet = FieldSet { bits: 8 };
    /// The destination port.
    pub const DST_PORT: FieldSet = FieldSet { bits: 16 };
    /// Values from the source-side ident++ response.
    pub const RESP_SRC: FieldSet = FieldSet { bits: 32 };
    /// Values from the destination-side ident++ response.
    pub const RESP_DST: FieldSet = FieldSet { bits: 64 };
    /// Every field (the conservative answer for `allowed()` delegation,
    /// whose sub-rule set arrives at evaluation time).
    pub const ALL: FieldSet = FieldSet { bits: 127 };

    /// Set union.
    pub const fn union(self, other: FieldSet) -> FieldSet {
        FieldSet {
            bits: self.bits | other.bits,
        }
    }

    /// Set intersection.
    pub const fn intersect(self, other: FieldSet) -> FieldSet {
        FieldSet {
            bits: self.bits & other.bits,
        }
    }

    /// Whether every field in `other` is also in `self`.
    pub const fn contains(self, other: FieldSet) -> bool {
        self.bits & other.bits == other.bits
    }

    /// Whether the set is empty.
    pub const fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// The names of the fields in the set, in canonical order.
    pub fn names(self) -> impl Iterator<Item = &'static str> {
        const NAMES: [(FieldSet, &str); 7] = [
            (FieldSet::PROTO, "protocol"),
            (FieldSet::SRC_ADDR, "src-addr"),
            (FieldSet::SRC_PORT, "src-port"),
            (FieldSet::DST_ADDR, "dst-addr"),
            (FieldSet::DST_PORT, "dst-port"),
            (FieldSet::RESP_SRC, "src-response"),
            (FieldSet::RESP_DST, "dst-response"),
        ];
        NAMES
            .into_iter()
            .filter(move |(f, _)| self.contains(*f))
            .map(|(_, name)| name)
    }
}

impl std::fmt::Display for FieldSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "none");
        }
        let mut first = true;
        for name in self.names() {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{name}")?;
            first = false;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Tree structure
// ---------------------------------------------------------------------------

/// Why tree construction proved a rule can never match any flow. These rules
/// land in no leaf — they are the tree's *unreachable leaves*, surfaced as
/// dead rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnmatchableReason {
    /// A named service port that resolves to nothing (`port nosuchservice`):
    /// the endpoint's port test fails closed for every flow.
    UnresolvablePort,
    /// An inverted port range (`port 2000:1000`) matches no port.
    EmptyPortRange,
    /// A non-negated endpoint constrained to an empty address set (a missing
    /// or empty table).
    EmptyAddressSet,
}

impl std::fmt::Display for UnmatchableReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnmatchableReason::UnresolvablePort => {
                write!(f, "a named port that resolves to no service")
            }
            UnmatchableReason::EmptyPortRange => write!(f, "an inverted (empty) port range"),
            UnmatchableReason::EmptyAddressSet => {
                write!(f, "a non-negated endpoint over an empty address set")
            }
        }
    }
}

/// The membership test of an address group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum GroupTest {
    /// Index into the compiled policy's flattened sets.
    Set(usize),
    /// A masked-compare CIDR test.
    Cidr { net: u32, mask: u32 },
}

/// One host-set membership group: all rules (on one side) constrained to the
/// same flattened set or CIDR. The membership test runs once per flow.
#[derive(Debug)]
pub(crate) struct AddrGroup {
    pub(crate) side: Side,
    pub(crate) test: GroupTest,
    pub(crate) rules: Vec<u32>,
}

/// One nested response-value matcher: all rules carrying
/// `eq(@side[key], lit)` dispatch through an exact-match table over the
/// memoized `latest(key)` lookup.
#[derive(Debug)]
pub(crate) struct RespTable {
    pub(crate) side: Side,
    pub(crate) key: Sym,
    pub(crate) slot: u16,
    pub(crate) map: HashMap<String, Vec<u32>>,
}

/// Where tree construction placed a rule (introspection/debug only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Placement {
    DstPort,
    DstHost,
    SrcHost,
    RespValue,
    AddrGroup,
    Proto,
    Residual,
    /// Proven unmatchable: in no leaf.
    Unreachable(UnmatchableReason),
    /// Below the dead-prefix floor: unindexed (never a candidate).
    DeadPrefix,
}

/// Summary statistics of a built tree (for benches, docs, and `Debug`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatcherStats {
    /// Rules placed in any dispatch table (port/host/resp/group/proto).
    pub rules_indexed: usize,
    /// Rules in the ordered residual list.
    pub residual_rules: usize,
    /// Rules proven unmatchable (unreachable leaves).
    pub unreachable_rules: usize,
    /// Distinct dst-port table entries.
    pub port_entries: usize,
    /// Distinct dst-host + src-host table entries.
    pub host_entries: usize,
    /// Distinct protocol table entries.
    pub proto_entries: usize,
    /// Host-set / CIDR membership groups.
    pub addr_groups: usize,
    /// Nested response-value tables.
    pub resp_tables: usize,
    /// Total entries across the response-value tables.
    pub resp_entries: usize,
}

/// The built matcher tree over a compiled rule list. Positions are indices
/// into `CompiledPolicy::rules` (not source indices).
pub(crate) struct MatcherTree {
    proto: HashMap<u8, Vec<u32>>,
    dst_port: HashMap<u16, Vec<u32>>,
    dst_host: HashMap<u32, Vec<u32>>,
    src_host: HashMap<u32, Vec<u32>>,
    groups: Vec<AddrGroup>,
    resp: Vec<RespTable>,
    residual: Vec<u32>,
    /// Per compiled position: the fields the rule inspects while matching.
    fields: Vec<FieldSet>,
    /// Per compiled position: where the rule landed.
    placements: Vec<Placement>,
    /// Positions proven unmatchable, with reasons (sorted ascending).
    unreachable: Vec<(u32, UnmatchableReason)>,
}

/// What a rule would like to dispatch on, in decreasing selectivity order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wish {
    Port(u16),
    PortRange(u16, u16),
    DstHost(u32),
    SrcHost(u32),
    Resp { table: RespKey, lit: Sym },
    Group(GroupKey),
    Proto(u8),
}

type RespKey = (Side, Sym, u16);
type GroupKey = (Side, GroupTest);

impl MatcherTree {
    /// Builds the tree over `rules[floor..]`. Positions below `floor` are the
    /// compiler's dead prefix (a later unconditional rule always outmatches
    /// them) and are left unindexed.
    pub(crate) fn build(
        rules: &[CRule],
        floor: usize,
        sets: &[FlatSet],
        symbols: &SymbolTable,
    ) -> MatcherTree {
        let mut fields = Vec::with_capacity(rules.len());
        let mut placements = vec![Placement::DeadPrefix; rules.len()];
        let mut wish_lists: Vec<Vec<Wish>> = Vec::with_capacity(rules.len());
        let mut unreachable: Vec<(u32, UnmatchableReason)> = Vec::new();

        // Pass 1: per-rule field sets, unmatchability proofs, and wish lists.
        let mut group_counts: HashMap<GroupKey, usize> = HashMap::new();
        let mut resp_counts: HashMap<RespKey, usize> = HashMap::new();
        for (pos, rule) in rules.iter().enumerate() {
            fields.push(rule_fields(rule));
            if pos < floor {
                wish_lists.push(Vec::new());
                continue;
            }
            if let Some(reason) = unmatchable(rule, sets) {
                unreachable.push((pos as u32, reason));
                placements[pos] = Placement::Unreachable(reason);
                wish_lists.push(Vec::new());
                continue;
            }
            let wishes = rule_wishes(rule);
            if let Some(first) = wishes.first() {
                match first {
                    Wish::Group(key) => *group_counts.entry(*key).or_insert(0) += 1,
                    Wish::Resp { table, .. } => *resp_counts.entry(*table).or_insert(0) += 1,
                    _ => {}
                }
            }
            wish_lists.push(wishes);
        }

        // Select which membership groups and response tables to materialize:
        // most-populous first, ties broken by first appearance so the choice
        // is deterministic.
        let chosen_groups = choose_top(&group_counts, &wish_lists, MAX_ADDR_GROUPS, |w| match w {
            Wish::Group(key) => Some(*key),
            _ => None,
        });
        let chosen_resp = choose_top(&resp_counts, &wish_lists, MAX_RESP_TABLES, |w| match w {
            Wish::Resp { table, .. } => Some(*table),
            _ => None,
        });

        let mut tree = MatcherTree {
            proto: HashMap::new(),
            dst_port: HashMap::new(),
            dst_host: HashMap::new(),
            src_host: HashMap::new(),
            groups: chosen_groups
                .iter()
                .map(|(side, test)| AddrGroup {
                    side: *side,
                    test: *test,
                    rules: Vec::new(),
                })
                .collect(),
            resp: chosen_resp
                .iter()
                .map(|(side, key, slot)| RespTable {
                    side: *side,
                    key: *key,
                    slot: *slot,
                    map: HashMap::new(),
                })
                .collect(),
            residual: Vec::new(),
            fields,
            placements,
            unreachable,
        };

        // Pass 2: place every live rule at its first realizable wish.
        // Iterating positions in ascending order keeps every leaf list
        // sorted, which the min-index merge depends on.
        for (pos, wishes) in wish_lists.iter().enumerate() {
            if pos < floor || matches!(tree.placements[pos], Placement::Unreachable(_)) {
                continue;
            }
            tree.place(pos as u32, wishes, &chosen_groups, &chosen_resp, symbols);
        }
        tree
    }

    fn place(
        &mut self,
        pos: u32,
        wishes: &[Wish],
        chosen_groups: &[GroupKey],
        chosen_resp: &[RespKey],
        symbols: &SymbolTable,
    ) {
        for wish in wishes {
            match wish {
                Wish::Port(p) => {
                    self.dst_port.entry(*p).or_default().push(pos);
                    self.placements[pos as usize] = Placement::DstPort;
                    return;
                }
                Wish::PortRange(lo, hi) => {
                    // The rule appears under every port of the (narrow)
                    // range; a flow consults exactly one port entry, so the
                    // merge still never sees a duplicate.
                    for p in *lo..=*hi {
                        self.dst_port.entry(p).or_default().push(pos);
                    }
                    self.placements[pos as usize] = Placement::DstPort;
                    return;
                }
                Wish::DstHost(h) => {
                    self.dst_host.entry(*h).or_default().push(pos);
                    self.placements[pos as usize] = Placement::DstHost;
                    return;
                }
                Wish::SrcHost(h) => {
                    self.src_host.entry(*h).or_default().push(pos);
                    self.placements[pos as usize] = Placement::SrcHost;
                    return;
                }
                Wish::Resp { table, lit } => {
                    if let Some(idx) = chosen_resp.iter().position(|k| k == table) {
                        self.resp[idx]
                            .map
                            .entry(symbols.get(*lit).to_string())
                            .or_default()
                            .push(pos);
                        self.placements[pos as usize] = Placement::RespValue;
                        return;
                    }
                }
                Wish::Group(key) => {
                    if let Some(idx) = chosen_groups.iter().position(|k| k == key) {
                        self.groups[idx].rules.push(pos);
                        self.placements[pos as usize] = Placement::AddrGroup;
                        return;
                    }
                }
                Wish::Proto(p) => {
                    self.proto.entry(*p).or_default().push(pos);
                    self.placements[pos as usize] = Placement::Proto;
                    return;
                }
            }
        }
        self.residual.push(pos);
        self.placements[pos as usize] = Placement::Residual;
    }

    /// Pushes the candidate lists selected by the flow's *header* fields
    /// (protocol, ports, addresses, set membership). Response-value tables
    /// are the caller's job — they need the evaluation's memoized response
    /// lookups.
    pub(crate) fn push_flow_lists<'t>(
        &'t self,
        flow: &FiveTuple,
        sets: &[FlatSet],
        merge: &mut Merge<'t>,
    ) {
        if let Some(list) = self.proto.get(&flow.protocol.number()) {
            merge.push(list);
        }
        if let Some(list) = self.dst_port.get(&flow.dst_port) {
            merge.push(list);
        }
        let dst = flow.dst_ip.to_u32();
        let src = flow.src_ip.to_u32();
        if let Some(list) = self.dst_host.get(&dst) {
            merge.push(list);
        }
        if let Some(list) = self.src_host.get(&src) {
            merge.push(list);
        }
        for group in &self.groups {
            let addr = match group.side {
                Side::Src => src,
                Side::Dst => dst,
            };
            let member = match group.test {
                GroupTest::Set(idx) => sets[idx].contains(addr),
                GroupTest::Cidr { net, mask } => addr & mask == net,
            };
            if member {
                merge.push(&group.rules);
            }
        }
        merge.push(&self.residual);
    }

    /// The nested response-value tables (consulted by the evaluation run,
    /// which owns the memoized response lookups).
    pub(crate) fn resp_tables(&self) -> &[RespTable] {
        &self.resp
    }

    /// The fields rule `pos` inspects while matching.
    pub(crate) fn fields_of(&self, pos: usize) -> FieldSet {
        self.fields[pos]
    }

    /// Positions proven unmatchable, with reasons.
    pub(crate) fn unreachable(&self) -> &[(u32, UnmatchableReason)] {
        &self.unreachable
    }

    /// Union of inspected fields over one subtree's candidate list.
    fn union_fields(&self, list: &[u32]) -> FieldSet {
        list.iter().fold(FieldSet::EMPTY, |acc, &pos| {
            acc.union(self.fields[pos as usize])
        })
    }

    /// Per-subtree inspection sets: the union of inspected fields under each
    /// root dispatch dimension. `pfcheck` uses these to report what a whole
    /// policy region reads; the per-rule sets drive granularity blame.
    pub(crate) fn subtree_fields(&self) -> Vec<(&'static str, FieldSet)> {
        let mut out = Vec::new();
        let mut dim = |name: &'static str, fields: FieldSet| {
            if !fields.is_empty() {
                out.push((name, fields));
            }
        };
        let union_map = |lists: Vec<&Vec<u32>>| {
            lists
                .into_iter()
                .fold(FieldSet::EMPTY, |acc, l| acc.union(self.union_fields(l)))
        };
        dim("dst-port", union_map(self.dst_port.values().collect()));
        dim("dst-host", union_map(self.dst_host.values().collect()));
        dim("src-host", union_map(self.src_host.values().collect()));
        dim(
            "addr-group",
            self.groups.iter().fold(FieldSet::EMPTY, |acc, g| {
                acc.union(self.union_fields(&g.rules))
            }),
        );
        dim(
            "resp-value",
            self.resp.iter().fold(FieldSet::EMPTY, |acc, t| {
                acc.union(union_map(t.map.values().collect()))
            }),
        );
        dim("proto", union_map(self.proto.values().collect()));
        dim("residual", self.union_fields(&self.residual));
        out
    }

    /// Summary statistics.
    pub(crate) fn stats(&self) -> MatcherStats {
        let placed = |p: Placement| {
            self.placements
                .iter()
                .filter(|candidate| **candidate == p)
                .count()
        };
        MatcherStats {
            rules_indexed: placed(Placement::DstPort)
                + placed(Placement::DstHost)
                + placed(Placement::SrcHost)
                + placed(Placement::RespValue)
                + placed(Placement::AddrGroup)
                + placed(Placement::Proto),
            residual_rules: self.residual.len(),
            unreachable_rules: self.unreachable.len(),
            port_entries: self.dst_port.len(),
            host_entries: self.dst_host.len() + self.src_host.len(),
            proto_entries: self.proto.len(),
            addr_groups: self.groups.iter().filter(|g| !g.rules.is_empty()).count(),
            resp_tables: self.resp.iter().filter(|t| !t.map.is_empty()).count(),
            resp_entries: self.resp.iter().map(|t| t.map.len()).sum(),
        }
    }
}

/// Picks the top `cap` keys by wish count (ties: first appearance in rule
/// order, so the choice is stable across builds).
fn choose_top<K: Copy + PartialEq + Eq + std::hash::Hash>(
    counts: &HashMap<K, usize>,
    wish_lists: &[Vec<Wish>],
    cap: usize,
    extract: impl Fn(&Wish) -> Option<K>,
) -> Vec<K> {
    // First-appearance order over first wishes only (the ones counted).
    let mut order: Vec<K> = Vec::new();
    for wishes in wish_lists {
        if let Some(key) = wishes.first().and_then(&extract) {
            if counts.contains_key(&key) && !order.contains(&key) {
                order.push(key);
            }
        }
    }
    let mut ranked: Vec<(usize, usize, K)> = order
        .iter()
        .enumerate()
        .map(|(first_seen, key)| (counts[key], first_seen, *key))
        .collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    ranked.into_iter().take(cap).map(|(_, _, k)| k).collect()
}

/// Proves a rule unmatchable from its endpoints alone, if possible.
fn unmatchable(rule: &CRule, sets: &[FlatSet]) -> Option<UnmatchableReason> {
    for endpoint in [&rule.from, &rule.to].into_iter().flatten() {
        match endpoint.port {
            CPort::Never => return Some(UnmatchableReason::UnresolvablePort),
            CPort::Range(lo, hi) if lo > hi => return Some(UnmatchableReason::EmptyPortRange),
            _ => {}
        }
        if let CAddr::Set(idx) = endpoint.addr {
            if !endpoint.negate && sets[idx].is_empty() {
                return Some(UnmatchableReason::EmptyAddressSet);
            }
        }
    }
    None
}

/// The rule's dispatch wish list, in decreasing selectivity order. Always
/// realizable in the worst case via the residual list (implicit last wish).
fn rule_wishes(rule: &CRule) -> Vec<Wish> {
    let mut wishes = Vec::new();
    if let Some(to) = &rule.to {
        // Port dispatch is sound even under `!addr` negation: negation
        // applies to the address test only, the port must match regardless.
        match to.port {
            CPort::Eq(p) => wishes.push(Wish::Port(p)),
            CPort::Range(lo, hi) if (hi as u32).saturating_sub(lo as u32) < RANGE_EXPAND_MAX => {
                wishes.push(Wish::PortRange(lo, hi))
            }
            _ => {}
        }
        if !to.negate {
            match to.addr {
                CAddr::Host(h) => wishes.push(Wish::DstHost(h)),
                CAddr::Cidr { net, mask } if mask == u32::MAX => wishes.push(Wish::DstHost(net)),
                _ => {}
            }
        }
    }
    if let Some(from) = &rule.from {
        if !from.negate {
            match from.addr {
                CAddr::Host(h) => wishes.push(Wish::SrcHost(h)),
                CAddr::Cidr { net, mask } if mask == u32::MAX => wishes.push(Wish::SrcHost(net)),
                _ => {}
            }
        }
    }
    for pred in &rule.preds {
        if let CPred::EqRespLit {
            side,
            key,
            slot,
            lit,
        } = pred
        {
            wishes.push(Wish::Resp {
                table: (*side, *key, *slot),
                lit: *lit,
            });
            break;
        }
    }
    for (endpoint, side) in [(&rule.to, Side::Dst), (&rule.from, Side::Src)] {
        if let Some(e) = endpoint {
            if !e.negate {
                match e.addr {
                    CAddr::Set(idx) => wishes.push(Wish::Group((side, GroupTest::Set(idx)))),
                    // mask == MAX handled as a host above; mask == 0 matches
                    // everything and discriminates nothing.
                    CAddr::Cidr { net, mask } if mask != u32::MAX && mask != 0 => {
                        wishes.push(Wish::Group((side, GroupTest::Cidr { net, mask })))
                    }
                    _ => {}
                }
            }
        }
    }
    if let Some(p) = rule.proto {
        wishes.push(Wish::Proto(p.number()));
    }
    wishes
}

/// The fields a compiled rule inspects while matching.
fn rule_fields(rule: &CRule) -> FieldSet {
    let mut fields = FieldSet::EMPTY;
    if rule.proto.is_some() {
        fields = fields.union(FieldSet::PROTO);
    }
    for (endpoint, addr_bit, port_bit) in [
        (&rule.from, FieldSet::SRC_ADDR, FieldSet::SRC_PORT),
        (&rule.to, FieldSet::DST_ADDR, FieldSet::DST_PORT),
    ] {
        if let Some(e) = endpoint {
            if e.negate || !matches!(e.addr, CAddr::Any) {
                fields = fields.union(addr_bit);
            }
            if !matches!(e.port, CPort::Any) {
                fields = fields.union(port_bit);
            }
        }
    }
    for pred in &rule.preds {
        fields = fields.union(pred_fields(pred));
    }
    fields
}

fn arg_fields(arg: &CArg) -> FieldSet {
    match arg {
        CArg::Lit(_) | CArg::Missing => FieldSet::EMPTY,
        CArg::Resp { side, .. } => side_field(*side),
    }
}

fn side_field(side: Side) -> FieldSet {
    match side {
        Side::Src => FieldSet::RESP_SRC,
        Side::Dst => FieldSet::RESP_DST,
    }
}

fn pred_fields(pred: &CPred) -> FieldSet {
    match pred {
        CPred::EqRespLit { side, .. } => side_field(*side),
        CPred::Cmp { a, b, .. }
        | CPred::Includes {
            haystack: a,
            needle: b,
        } => arg_fields(a).union(arg_fields(b)),
        CPred::Exists(arg) => arg_fields(arg),
        CPred::Member { value, list } => {
            let list_fields = match list {
                CList::Static(_) => FieldSet::EMPTY,
                CList::Dynamic(arg) => arg_fields(arg),
            };
            arg_fields(value).union(list_fields)
        }
        // The delegated rule set arrives inside a response at evaluation
        // time and may inspect anything — the only sound answer is "all".
        CPred::Allowed(_) => FieldSet::ALL,
        CPred::Verify { sig, key, data } => data
            .iter()
            .map(arg_fields)
            .fold(arg_fields(sig).union(arg_fields(key)), FieldSet::union),
        CPred::User { args, .. } => args
            .iter()
            .map(arg_fields)
            .fold(FieldSet::EMPTY, FieldSet::union),
        CPred::Never => FieldSet::EMPTY,
    }
}

// ---------------------------------------------------------------------------
// The k-way min-index merge
// ---------------------------------------------------------------------------

/// Merges up to [`MAX_LISTS`] disjoint, ascending candidate lists by
/// minimum position. Lives entirely on the stack; pushing an empty list is
/// a no-op, so the active width is usually far below the bound.
pub(crate) struct Merge<'a> {
    lists: [&'a [u32]; MAX_LISTS],
    len: usize,
}

impl<'a> Merge<'a> {
    pub(crate) fn new() -> Merge<'a> {
        Merge {
            lists: [&[]; MAX_LISTS],
            len: 0,
        }
    }

    /// Adds a candidate list. Panics if the static [`MAX_LISTS`] bound is
    /// exceeded — impossible by construction (the tree materializes at most
    /// that many dispatch dimensions), and a silent drop would change
    /// decisions, so this fails loudly.
    pub(crate) fn push(&mut self, list: &'a [u32]) {
        if list.is_empty() {
            return;
        }
        assert!(self.len < MAX_LISTS, "matcher tree exceeded MAX_LISTS");
        self.lists[self.len] = list;
        self.len += 1;
    }

    /// The next candidate position in ascending order.
    pub(crate) fn next(&mut self) -> Option<u32> {
        let mut best: Option<(usize, u32)> = None;
        for (idx, list) in self.lists[..self.len].iter().enumerate() {
            let head = list[0];
            if best.is_none_or(|(_, b)| head < b) {
                best = Some((idx, head));
            }
        }
        let (idx, head) = best?;
        let rest = &self.lists[idx][1..];
        if rest.is_empty() {
            // Swap-remove the exhausted list so the scan width shrinks.
            self.len -= 1;
            self.lists[idx] = self.lists[self.len];
        } else {
            self.lists[idx] = rest;
        }
        Some(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_yields_ascending_union_of_disjoint_lists() {
        let mut merge = Merge::new();
        merge.push(&[1, 4, 9]);
        merge.push(&[]);
        merge.push(&[0, 5]);
        merge.push(&[2, 3, 10]);
        let mut out = Vec::new();
        while let Some(pos) = merge.next() {
            out.push(pos);
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 9, 10]);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let mut merge = Merge::new();
        assert_eq!(merge.next(), None);
        merge.push(&[]);
        assert_eq!(merge.next(), None);
    }

    #[test]
    fn field_set_algebra_and_display() {
        let ports = FieldSet::SRC_PORT.union(FieldSet::DST_PORT);
        assert!(ports.contains(FieldSet::SRC_PORT));
        assert!(!ports.contains(FieldSet::SRC_ADDR));
        assert!(FieldSet::ALL.contains(ports));
        assert!(FieldSet::EMPTY.is_empty());
        assert_eq!(format!("{}", FieldSet::EMPTY), "none");
        assert_eq!(format!("{ports}"), "src-port+dst-port");
        assert_eq!(
            FieldSet::ALL.names().count(),
            7,
            "every field has exactly one name"
        );
    }
}
