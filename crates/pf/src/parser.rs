//! Recursive-descent parser for PF+=2.
//!
//! The parser accepts the language subset used by every configuration file in
//! the paper (Figures 2–8): `table`, `dict`, and macro definitions, and
//! `pass`/`block` rules with `quick`, `proto`, `from`/`to` endpoints
//! (including `!` negation, table references and `port` constraints), `with`
//! function predicates, and `keep state`.
//!
//! Newlines are not significant; rule boundaries are recovered from the
//! keywords that can start a new item (`pass`, `block`, `table`, `dict`, or a
//! macro assignment).

use identxx_proto::IpProtocol;

use crate::ast::{Action, AddrSpec, Endpoint, FnArg, FnCall, PortSpec, Rule, RuleSet, Span};
use crate::dict::Dict;
use crate::error::PfError;
use crate::lexer::{tokenize, SpannedTok, Tok};
use crate::table::{parse_addr_spec, Table, TableEntry};

/// Parses a complete PF+=2 configuration.
pub fn parse_ruleset(input: &str) -> Result<RuleSet, PfError> {
    let tokens = tokenize(input)?;
    Parser::new(tokens).parse()
}

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<SpannedTok>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, offset: usize) -> Option<&Tok> {
        self.tokens.get(self.pos + offset).map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.line)
            .unwrap_or(0)
    }

    /// The source position of the current token (or the last one at EOF).
    fn span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| Span::new(t.line, t.col))
            .unwrap_or_default()
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Tok, what: &str) -> Result<(), PfError> {
        let line = self.line();
        match self.next() {
            Some(ref t) if t == expected => Ok(()),
            Some(t) => Err(PfError::parse(
                line,
                format!("expected {what}, found {t:?}"),
            )),
            None => Err(PfError::parse(
                line,
                format!("expected {what}, found end of input"),
            )),
        }
    }

    fn expect_word(&mut self, what: &str) -> Result<String, PfError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Word(w)) => Ok(w),
            Some(t) => Err(PfError::parse(
                line,
                format!("expected {what}, found {t:?}"),
            )),
            None => Err(PfError::parse(
                line,
                format!("expected {what}, found end of input"),
            )),
        }
    }

    /// Parses `<name>`.
    fn angle_name(&mut self) -> Result<String, PfError> {
        self.expect(&Tok::Lt, "'<'")?;
        let name = self.expect_word("a name")?;
        self.expect(&Tok::Gt, "'>'")?;
        Ok(name)
    }

    fn parse(mut self) -> Result<RuleSet, PfError> {
        let mut rs = RuleSet::new();
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Word(w) if w == "table" => {
                    self.next();
                    let (name, table) = self.parse_table()?;
                    rs.tables.insert(name, table);
                }
                Tok::Word(w) if w == "dict" => {
                    self.next();
                    let (name, dict) = self.parse_dict()?;
                    rs.dicts.insert(name, dict);
                }
                Tok::Word(w) if w == "pass" || w == "block" => {
                    let rule = self.parse_rule()?;
                    rs.rules.push(rule);
                }
                Tok::Word(_) if matches!(self.peek_at(1), Some(Tok::Equals)) => {
                    let name = self.expect_word("macro name")?;
                    self.next(); // '='
                    let line = self.line();
                    let value = match self.next() {
                        Some(Tok::Str(s)) => s,
                        Some(Tok::Word(w)) => w,
                        other => {
                            return Err(PfError::parse(
                                line,
                                format!("expected macro value, found {other:?}"),
                            ))
                        }
                    };
                    rs.macros.insert(name, value);
                }
                other => {
                    return Err(PfError::parse(
                        self.line(),
                        format!("expected a definition or rule, found {other:?}"),
                    ));
                }
            }
        }
        Ok(rs)
    }

    /// `table <name> { entries }` (the `table` keyword is already consumed).
    fn parse_table(&mut self) -> Result<(String, Table), PfError> {
        let name = self.angle_name()?;
        self.expect(&Tok::LBrace, "'{'")?;
        let mut table = Table::new();
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.next();
                    break;
                }
                Some(Tok::Lt) => {
                    let referenced = self.angle_name()?;
                    table.push(TableEntry::TableRef(referenced));
                }
                Some(Tok::Word(_)) => {
                    let word = self.expect_word("an address")?;
                    table.push(TableEntry::parse_addr(&word)?);
                }
                Some(Tok::Comma) => {
                    self.next(); // commas between entries are tolerated
                }
                other => {
                    return Err(PfError::parse(
                        self.line(),
                        format!("unexpected token in table body: {other:?}"),
                    ));
                }
            }
        }
        Ok((name, table))
    }

    /// `dict <name> { key : value ... }` (the `dict` keyword already consumed).
    fn parse_dict(&mut self) -> Result<(String, Dict), PfError> {
        let name = self.angle_name()?;
        self.expect(&Tok::LBrace, "'{'")?;
        let mut dict = Dict::new();
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.next();
                    break;
                }
                Some(Tok::Word(_)) => {
                    let key = self.expect_word("a dictionary key")?;
                    self.expect(&Tok::Colon, "':'")?;
                    let line = self.line();
                    let value = match self.next() {
                        Some(Tok::Word(w)) => w,
                        Some(Tok::Str(s)) => s,
                        other => {
                            return Err(PfError::parse(
                                line,
                                format!("expected dictionary value, found {other:?}"),
                            ))
                        }
                    };
                    dict.insert(key, value);
                }
                Some(Tok::Comma) => {
                    self.next();
                }
                other => {
                    return Err(PfError::parse(
                        self.line(),
                        format!("unexpected token in dict body: {other:?}"),
                    ));
                }
            }
        }
        Ok((name, dict))
    }

    /// True if the current token begins a new top-level item, i.e. the current
    /// rule has ended.
    fn at_item_boundary(&self) -> bool {
        match self.peek() {
            None => true,
            Some(Tok::Word(w)) => match w.as_str() {
                "pass" | "block" | "table" | "dict" => true,
                // A macro assignment (`name = ...`) also starts a new item.
                _ => matches!(self.peek_at(1), Some(Tok::Equals)),
            },
            _ => false,
        }
    }

    fn parse_rule(&mut self) -> Result<Rule, PfError> {
        let line = self.line();
        let span = self.span();
        let action_word = self.expect_word("an action")?;
        let action = match action_word.as_str() {
            "pass" => Action::Pass,
            "block" => Action::Block,
            other => {
                return Err(PfError::parse(line, format!("unknown action {other:?}")));
            }
        };

        let mut rule = Rule {
            action,
            quick: false,
            proto: None,
            from: None,
            to: None,
            withs: Vec::new(),
            keep_state: false,
            line,
            span,
        };

        while !self.at_item_boundary() {
            let clause_line = self.line();
            match self.peek() {
                Some(Tok::Word(w)) => match w.as_str() {
                    "quick" => {
                        self.next();
                        rule.quick = true;
                    }
                    "all" => {
                        self.next();
                        rule.from = Some(Endpoint::any());
                        rule.to = Some(Endpoint::any());
                    }
                    "proto" => {
                        self.next();
                        let proto_word = self.expect_word("a protocol")?;
                        rule.proto = Some(proto_word.parse::<IpProtocol>().map_err(|_| {
                            PfError::parse(clause_line, format!("unknown protocol {proto_word:?}"))
                        })?);
                    }
                    "from" => {
                        self.next();
                        rule.from = Some(self.parse_endpoint()?);
                    }
                    "to" => {
                        self.next();
                        rule.to = Some(self.parse_endpoint()?);
                    }
                    "with" => {
                        self.next();
                        rule.withs.push(self.parse_fncall()?);
                    }
                    "keep" => {
                        self.next();
                        let state_word = self.expect_word("'state'")?;
                        if state_word != "state" {
                            return Err(PfError::parse(
                                clause_line,
                                format!("expected 'state' after 'keep', found {state_word:?}"),
                            ));
                        }
                        rule.keep_state = true;
                    }
                    other => {
                        return Err(PfError::parse(
                            clause_line,
                            format!("unexpected keyword {other:?} in rule"),
                        ));
                    }
                },
                other => {
                    return Err(PfError::parse(
                        clause_line,
                        format!("unexpected token {other:?} in rule"),
                    ));
                }
            }
        }
        Ok(rule)
    }

    /// `[!] (any | <table> | addr | cidr) [port P]`
    fn parse_endpoint(&mut self) -> Result<Endpoint, PfError> {
        let mut negate = false;
        if matches!(self.peek(), Some(Tok::Bang)) {
            self.next();
            negate = true;
        }
        let line = self.line();
        let addr = match self.peek() {
            Some(Tok::Lt) => {
                let name = self.angle_name()?;
                AddrSpec::Table(name)
            }
            Some(Tok::Word(w)) if w == "any" => {
                self.next();
                AddrSpec::Any
            }
            Some(Tok::Word(_)) => {
                let word = self.expect_word("an address")?;
                parse_addr_spec(&word)?
            }
            other => {
                return Err(PfError::parse(
                    line,
                    format!("expected an endpoint address, found {other:?}"),
                ));
            }
        };

        let mut port = None;
        if let Some(Tok::Word(w)) = self.peek() {
            if w == "port" {
                self.next();
                port = Some(self.parse_port_spec()?);
            }
        }

        Ok(Endpoint { negate, addr, port })
    }

    fn parse_port_spec(&mut self) -> Result<PortSpec, PfError> {
        let line = self.line();
        let word = self.expect_word("a port")?;
        // A range is written `lo:hi`; the lexer splits it into
        // Word(lo) Colon Word(hi).
        if matches!(self.peek(), Some(Tok::Colon)) {
            self.next();
            let hi_word = self.expect_word("the upper bound of a port range")?;
            let lo: u16 = word
                .parse()
                .map_err(|_| PfError::parse(line, format!("bad port range {word}:{hi_word}")))?;
            let hi: u16 = hi_word
                .parse()
                .map_err(|_| PfError::parse(line, format!("bad port range {word}:{hi_word}")))?;
            if lo > hi {
                return Err(PfError::parse(
                    line,
                    format!("inverted port range {word}:{hi_word}"),
                ));
            }
            return Ok(PortSpec::Range(lo, hi));
        }
        if let Ok(n) = word.parse::<u16>() {
            return Ok(PortSpec::Number(n));
        }
        // A token that is purely numeric but does not fit a u16 is an error
        // rather than a (nonexistent) service name.
        if word.chars().all(|c| c.is_ascii_digit()) {
            return Err(PfError::parse(line, format!("port {word} out of range")));
        }
        Ok(PortSpec::Named(word))
    }

    /// `name(arg, arg, ...)`
    fn parse_fncall(&mut self) -> Result<FnCall, PfError> {
        let line = self.line();
        let span = self.span();
        let name = self.expect_word("a function name")?;
        self.expect(&Tok::LParen, "'('")?;
        let mut args = Vec::new();
        if matches!(self.peek(), Some(Tok::RParen)) {
            self.next();
            return Ok(FnCall {
                name,
                args,
                line,
                span,
            });
        }
        loop {
            args.push(self.parse_fnarg()?);
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                other => {
                    return Err(PfError::parse(
                        line,
                        format!("expected ',' or ')' in call to {name}, found {other:?}"),
                    ));
                }
            }
        }
        Ok(FnCall {
            name,
            args,
            line,
            span,
        })
    }

    fn parse_fnarg(&mut self) -> Result<FnArg, PfError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::Star) => {
                self.next();
                self.expect(&Tok::At, "'@' after '*'")?;
                self.parse_dictref(true)
            }
            Some(Tok::At) => {
                self.next();
                self.parse_dictref(false)
            }
            Some(Tok::Dollar) => {
                self.next();
                let name = self.expect_word("a macro name")?;
                Ok(FnArg::MacroRef(name))
            }
            Some(Tok::Str(_)) => {
                if let Some(Tok::Str(s)) = self.next() {
                    Ok(FnArg::Literal(s))
                } else {
                    unreachable!()
                }
            }
            Some(Tok::Word(_)) => {
                // Consecutive bare words form a single space-joined literal
                // (e.g. `eq(*@src[site], branch-a branch-b)`).
                let mut literal = self.expect_word("an argument")?;
                while let Some(Tok::Word(_)) = self.peek() {
                    let next = self.expect_word("an argument")?;
                    literal.push(' ');
                    literal.push_str(&next);
                }
                Ok(FnArg::Literal(literal))
            }
            other => Err(PfError::parse(
                line,
                format!("expected a function argument, found {other:?}"),
            )),
        }
    }

    /// Parses `dictname[key]` (the `@` and optional `*` are already consumed).
    fn parse_dictref(&mut self, concat: bool) -> Result<FnArg, PfError> {
        let dict = self.expect_word("a dictionary name")?;
        self.expect(&Tok::LBracket, "'['")?;
        let key = self.expect_word("a key")?;
        self.expect(&Tok::RBracket, "']'")?;
        Ok(FnArg::DictRef { concat, dict, key })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_intro_example() {
        // The illustrative rule set from §3.3.
        let input = r#"
table <mail-server> {192.168.42.32}
block all
pass from any \
    with member(@src[groupID], users) \
    with eq(@src[app-name], pine) \
    to <mail-server> \
    with eq(@dst[userID], smtp)
"#;
        let rs = parse_ruleset(input).unwrap();
        assert_eq!(rs.tables.len(), 1);
        assert_eq!(rs.rules.len(), 2);
        assert_eq!(rs.rules[0].action, Action::Block);
        let pass = &rs.rules[1];
        assert_eq!(pass.action, Action::Pass);
        assert_eq!(pass.withs.len(), 3);
        assert_eq!(pass.withs[0].name, "member");
        assert_eq!(
            pass.to.as_ref().unwrap().addr,
            AddrSpec::Table("mail-server".into())
        );
    }

    #[test]
    fn parses_figure2_header_file() {
        let input = r#"
table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 }
table <int_hosts> { <lan> <server> }
allowed = "{ http ssh }" # a macro of apps

# default deny
block all

# allow connections outbound
pass from <int_hosts> \
    to !<int_hosts> \
    keep state

# allow all traffic from approved apps
pass from <int_hosts> \
    to <int_hosts> \
    with member(@src[name], $allowed) \
    keep state
"#;
        let rs = parse_ruleset(input).unwrap();
        assert_eq!(rs.tables.len(), 3);
        assert_eq!(rs.macros["allowed"], "{ http ssh }");
        assert_eq!(rs.rules.len(), 3);
        assert!(rs.rules[1].to.as_ref().unwrap().negate);
        assert!(rs.rules[1].keep_state);
        assert_eq!(
            rs.rules[2].withs[0].args[1],
            FnArg::MacroRef("allowed".into())
        );
    }

    #[test]
    fn parses_figure2_skype_file() {
        let input = r#"
table <skype_update> { 123.123.123.0/24 }
# skype to skype allowed
pass all \
    with eq(@src[name], skype) \
    with eq(@dst[name], skype)

# skype update feature
pass from any \
    to <skype_update> port 80 \
    with eq(@src[name], skype) \
    keep state
"#;
        let rs = parse_ruleset(input).unwrap();
        assert_eq!(rs.rules.len(), 2);
        let all_rule = &rs.rules[0];
        assert_eq!(all_rule.from, Some(Endpoint::any()));
        assert_eq!(all_rule.to, Some(Endpoint::any()));
        let update_rule = &rs.rules[1];
        assert_eq!(
            update_rule.to.as_ref().unwrap().port,
            Some(PortSpec::Number(80))
        );
        assert!(update_rule.keep_state);
    }

    #[test]
    fn parses_figure2_footer_file() {
        let input = r#"
# no really old versions of skype
block all \
    with eq(@src[name], skype) \
    with lt(@src[version], 200)
# no skype to server
block from any \
    to <server> \
    with eq(@src[name], skype)
"#;
        let rs = parse_ruleset(input).unwrap();
        assert_eq!(rs.rules.len(), 2);
        assert_eq!(rs.rules[0].withs[1].name, "lt");
        assert_eq!(rs.rules[1].action, Action::Block);
    }

    #[test]
    fn parses_figure5_research_delegation() {
        let input = r#"
dict <pubkeys> { \
    research : sk3ajffa932 \
    admin : a923jxa12kz \
}
pass from <research-machines> \
    with member(@src[groupID], research) \
    to !<production-machines> \
    with member(@dst[groupID], research) \
    with allowed(@dst[requirements]) \
    with verify(@dst[req-sig], \
        @pubkeys[research], \
        @dst[exe-hash], \
        @dst[app-name], \
        @dst[requirements])
"#;
        let rs = parse_ruleset(input).unwrap();
        assert_eq!(rs.dicts["pubkeys"].get("research"), Some("sk3ajffa932"));
        assert_eq!(rs.rules.len(), 1);
        let rule = &rs.rules[0];
        assert_eq!(rule.withs.len(), 4);
        let verify = &rule.withs[3];
        assert_eq!(verify.name, "verify");
        assert_eq!(verify.args.len(), 5);
        assert_eq!(
            verify.args[1],
            FnArg::DictRef {
                concat: false,
                dict: "pubkeys".into(),
                key: "research".into()
            }
        );
    }

    #[test]
    fn parses_figure8_conficker_rule() {
        let input = r#"
# default block everything
block all
# only allow "system" users in the LAN
pass from <lan> \
    with eq(@src[userID], system) \
    to <lan> \
    with eq(@dst[userID], system) \
    with eq(@dst[name], Server) \
    with includes(@dst[os-patch], MS08-067)
"#;
        let rs = parse_ruleset(input).unwrap();
        assert_eq!(rs.rules.len(), 2);
        assert_eq!(rs.rules[1].withs.len(), 4);
        assert_eq!(rs.rules[1].withs[3].name, "includes");
    }

    #[test]
    fn parses_star_concatenation_reference() {
        let input = "pass all with eq(*@src[userID], alice)";
        let rs = parse_ruleset(input).unwrap();
        assert_eq!(
            rs.rules[0].withs[0].args[0],
            FnArg::DictRef {
                concat: true,
                dict: "src".into(),
                key: "userID".into()
            }
        );
    }

    #[test]
    fn parses_quick_and_proto_and_port_ranges() {
        let input = "block quick proto tcp from any port 1:1023 to any";
        let rs = parse_ruleset(input).unwrap();
        let rule = &rs.rules[0];
        assert!(rule.quick);
        assert_eq!(rule.proto, Some(IpProtocol::Tcp));
        assert_eq!(
            rule.from.as_ref().unwrap().port,
            Some(PortSpec::Range(1, 1023))
        );
    }

    #[test]
    fn parses_named_port() {
        let input = "pass from any port http with eq(@src[name], skype)";
        let rs = parse_ruleset(input).unwrap();
        assert_eq!(
            rs.rules[0].from.as_ref().unwrap().port,
            Some(PortSpec::Named("http".into()))
        );
    }

    #[test]
    fn parses_host_address_endpoint() {
        let input = "pass from 10.1.2.3 to 10.0.0.0/8";
        let rs = parse_ruleset(input).unwrap();
        let rule = &rs.rules[0];
        assert!(matches!(
            rule.from.as_ref().unwrap().addr,
            AddrSpec::Host(_)
        ));
        assert!(matches!(
            rule.to.as_ref().unwrap().addr,
            AddrSpec::Cidr { prefix_len: 8, .. }
        ));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_ruleset("pass from").is_err());
        assert!(parse_ruleset("allow all").is_err());
        assert!(parse_ruleset("pass keep going").is_err());
        assert!(parse_ruleset("table <x> 10.0.0.1 }").is_err());
        assert!(parse_ruleset("pass from any port 99999").is_err());
        assert!(parse_ruleset("pass from any port 10:5 to any").is_err());
        assert!(parse_ruleset("pass with eq(@src[name] skype)").is_err());
        assert!(parse_ruleset("block all with ()").is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let input = "block all\npass from\n";
        match parse_ruleset(input) {
            Err(PfError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_gives_empty_ruleset() {
        let rs = parse_ruleset("  \n# nothing but comments\n").unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn zero_arg_function_call_parses() {
        let rs = parse_ruleset("pass all with always()").unwrap();
        assert!(rs.rules[0].withs[0].args.is_empty());
    }

    #[test]
    fn macro_definitions_with_word_value() {
        let rs = parse_ruleset("webport = 80\npass from any to any port 80").unwrap();
        assert_eq!(rs.macros["webport"], "80");
    }
}
