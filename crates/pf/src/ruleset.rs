//! Controller configuration files (`.control`) and their concatenation.
//!
//! "The controller's configuration files reside in a well known location and
//! have the `.control` extension. The files are read in alphabetical order and
//! their contents are concatenated. Some of these configuration files can be
//! written by the administrator, while others can be provided by application
//! developers or third-party security companies" (§3.4).
//!
//! [`ConfigSet`] models that directory as an in-memory collection so the
//! simulator does not need a real filesystem, but it can also be loaded from a
//! directory on disk.

use std::collections::BTreeMap;
use std::path::Path;

use crate::ast::RuleSet;
use crate::error::PfError;
use crate::parser::parse_ruleset;

/// A single named configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigFile {
    /// File name, e.g. `00-local-header.control`. Ordering is by this name.
    pub name: String,
    /// The PF+=2 source text.
    pub contents: String,
}

impl ConfigFile {
    /// Creates a configuration file entry.
    pub fn new(name: impl Into<String>, contents: impl Into<String>) -> Self {
        ConfigFile {
            name: name.into(),
            contents: contents.into(),
        }
    }
}

/// An ordered set of `.control` files.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConfigSet {
    files: BTreeMap<String, String>,
}

impl ConfigSet {
    /// Creates an empty configuration set.
    pub fn new() -> Self {
        ConfigSet::default()
    }

    /// Adds (or replaces) a configuration file. Only files whose name ends in
    /// `.control` participate in [`ConfigSet::compile`]; others are retained
    /// but ignored, mirroring a directory that may contain unrelated files.
    pub fn add(&mut self, file: ConfigFile) {
        self.files.insert(file.name, file.contents);
    }

    /// Convenience: add a file by name and contents.
    pub fn add_file(&mut self, name: impl Into<String>, contents: impl Into<String>) {
        self.add(ConfigFile::new(name, contents));
    }

    /// Removes a file by name, returning whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        self.files.remove(name).is_some()
    }

    /// Loads every `*.control` file from a directory on disk.
    pub fn load_dir(path: &Path) -> std::io::Result<ConfigSet> {
        let mut set = ConfigSet::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().to_string();
            if entry.file_type()?.is_file() && name.ends_with(".control") {
                let contents = std::fs::read_to_string(entry.path())?;
                set.add_file(name, contents);
            }
        }
        Ok(set)
    }

    /// The names of the `.control` files in load (alphabetical) order.
    pub fn control_file_names(&self) -> Vec<&str> {
        self.files
            .keys()
            .filter(|n| n.ends_with(".control"))
            .map(String::as_str)
            .collect()
    }

    /// Iterates over the `.control` files as `(name, contents)` pairs in load
    /// (alphabetical) order. Tools that need to attribute rules back to the
    /// file they came from (e.g. `pfcheck`) parse the files individually in
    /// this order, which yields the same merged rule set as
    /// [`ConfigSet::compile`].
    pub fn control_files(&self) -> impl Iterator<Item = (&str, &str)> {
        self.files
            .iter()
            .filter(|(n, _)| n.ends_with(".control"))
            .map(|(n, c)| (n.as_str(), c.as_str()))
    }

    /// Concatenates the `.control` files in alphabetical order and parses the
    /// result into a single [`RuleSet`].
    pub fn compile(&self) -> Result<RuleSet, PfError> {
        let mut combined = RuleSet::new();
        for (name, contents) in &self.files {
            if !name.ends_with(".control") {
                continue;
            }
            let parsed = parse_ruleset(contents)?;
            combined.merge(parsed);
        }
        Ok(combined)
    }

    /// The concatenated source text (useful for auditing what the controller
    /// actually evaluates).
    pub fn concatenated_source(&self) -> String {
        let mut out = String::new();
        for (name, contents) in &self.files {
            if !name.ends_with(".control") {
                continue;
            }
            out.push_str(&format!("# ---- {name} ----\n"));
            out.push_str(contents);
            if !contents.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }

    /// Number of stored files (including non-`.control` ones).
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Action;

    #[test]
    fn files_compile_in_alphabetical_order() {
        let mut set = ConfigSet::new();
        // Inserted out of order on purpose.
        set.add_file("99-local-footer.control", "block from any to <server>\n");
        set.add_file(
            "00-local-header.control",
            "table <server> { 192.168.1.1 }\nblock all\n",
        );
        set.add_file("50-skype.control", "pass all with eq(@src[name], skype)\n");

        assert_eq!(
            set.control_file_names(),
            vec![
                "00-local-header.control",
                "50-skype.control",
                "99-local-footer.control"
            ]
        );
        let rs = set.compile().unwrap();
        assert_eq!(rs.rules.len(), 3);
        // Order of rules follows file order: header's block, skype pass, footer block.
        assert_eq!(rs.rules[0].action, Action::Block);
        assert_eq!(rs.rules[1].action, Action::Pass);
        assert_eq!(rs.rules[2].action, Action::Block);
        assert!(rs.tables.contains_key("server"));
    }

    #[test]
    fn non_control_files_are_ignored() {
        let mut set = ConfigSet::new();
        set.add_file("readme.txt", "this is not a policy");
        set.add_file("10-policy.control", "block all\n");
        assert_eq!(set.len(), 2);
        assert_eq!(set.control_file_names(), vec!["10-policy.control"]);
        let rs = set.compile().unwrap();
        assert_eq!(rs.rules.len(), 1);
    }

    #[test]
    fn parse_errors_propagate() {
        let mut set = ConfigSet::new();
        set.add_file("10-bad.control", "pass from\n");
        assert!(set.compile().is_err());
    }

    #[test]
    fn remove_and_replace() {
        let mut set = ConfigSet::new();
        set.add_file("50-skype.control", "pass all\n");
        assert!(set.remove("50-skype.control"));
        assert!(!set.remove("50-skype.control"));
        assert!(set.is_empty());
        set.add_file("50-skype.control", "block all\n");
        set.add_file("50-skype.control", "pass all\n");
        assert_eq!(set.len(), 1);
        let rs = set.compile().unwrap();
        assert_eq!(rs.rules[0].action, Action::Pass);
    }

    #[test]
    fn concatenated_source_annotates_file_names() {
        let mut set = ConfigSet::new();
        set.add_file("00-a.control", "block all");
        set.add_file("10-b.control", "pass all\n");
        let src = set.concatenated_source();
        assert!(src.contains("# ---- 00-a.control ----"));
        assert!(src.contains("# ---- 10-b.control ----"));
        // Still parseable as a whole.
        assert!(parse_ruleset(&src).is_ok());
    }

    #[test]
    fn load_dir_reads_control_files() {
        let dir = std::env::temp_dir().join(format!("identxx-pf-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("00-a.control"), "block all\n").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not policy").unwrap();
        let set = ConfigSet::load_dir(&dir).unwrap();
        assert_eq!(set.control_file_names(), vec!["00-a.control"]);
        assert_eq!(set.compile().unwrap().rules.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
