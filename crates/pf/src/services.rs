//! Well-known service-name → port mappings.
//!
//! PF allows ports to be written by service name (`port http`, `from any port
//! http`, see Fig. 3's requirements). This module provides the subset of
//! `/etc/services` the paper's examples and our workloads need, plus a
//! fallback numeric parse.

/// The known service-name → port table. Matched case-insensitively without
/// allocating (no per-call lowercased copy of the token).
const SERVICES: &[(&str, u16)] = &[
    ("ftp-data", 20),
    ("ftp", 21),
    ("ssh", 22),
    ("telnet", 23),
    ("smtp", 25),
    ("dns", 53),
    ("domain", 53),
    ("http", 80),
    ("www", 80),
    ("kerberos", 88),
    ("pop3", 110),
    ("ident", 113),
    ("auth", 113),
    ("ntp", 123),
    ("imap", 143),
    ("snmp", 161),
    ("ldap", 389),
    ("https", 443),
    ("smb", 445),
    ("microsoft-ds", 445),
    ("smtps", 465),
    ("syslog", 514),
    ("submission", 587),
    ("ldaps", 636),
    ("identxx", 783),
    ("imaps", 993),
    ("pop3s", 995),
    ("mysql", 3306),
    ("rdp", 3389),
    ("postgresql", 5432),
    ("postgres", 5432),
    ("vnc", 5900),
    ("http-alt", 8080),
];

/// Resolves a service name or numeric string to a port number.
pub fn resolve_port(token: &str) -> Option<u16> {
    if let Ok(n) = token.parse::<u16>() {
        return Some(n);
    }
    SERVICES
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case(token))
        .map(|&(_, port)| port)
}

/// Returns the conventional service name for a port, if one is known (used by
/// workload generators and reporting).
pub fn service_name(port: u16) -> Option<&'static str> {
    Some(match port {
        20 => "ftp-data",
        21 => "ftp",
        22 => "ssh",
        23 => "telnet",
        25 => "smtp",
        53 => "dns",
        80 => "http",
        88 => "kerberos",
        110 => "pop3",
        113 => "ident",
        123 => "ntp",
        143 => "imap",
        161 => "snmp",
        389 => "ldap",
        443 => "https",
        445 => "smb",
        465 => "smtps",
        514 => "syslog",
        587 => "submission",
        636 => "ldaps",
        783 => "identxx",
        993 => "imaps",
        995 => "pop3s",
        3306 => "mysql",
        3389 => "rdp",
        5432 => "postgresql",
        5900 => "vnc",
        8080 => "http-alt",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_ports_pass_through() {
        assert_eq!(resolve_port("80"), Some(80));
        assert_eq!(resolve_port("65535"), Some(65535));
        assert_eq!(resolve_port("65536"), None);
    }

    #[test]
    fn named_services_resolve() {
        assert_eq!(resolve_port("http"), Some(80));
        assert_eq!(resolve_port("HTTP"), Some(80));
        assert_eq!(resolve_port("https"), Some(443));
        assert_eq!(resolve_port("smtp"), Some(25));
        assert_eq!(resolve_port("ssh"), Some(22));
        assert_eq!(resolve_port("identxx"), Some(783));
        assert_eq!(resolve_port("nosuchservice"), None);
    }

    #[test]
    fn names_round_trip_for_known_ports() {
        for name in ["http", "https", "smtp", "ssh", "dns", "smb"] {
            let port = resolve_port(name).unwrap();
            assert_eq!(service_name(port), Some(name));
        }
        assert_eq!(service_name(4), None);
    }
}
