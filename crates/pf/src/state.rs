//! The `keep state` state table.
//!
//! When a rule with `keep state` passes a flow, PF records the flow so that
//! subsequent packets — in either direction — are admitted without
//! re-evaluating the rule set. In an ident++/OpenFlow deployment the flow
//! table in the switches plays this caching role for the data path; the
//! controller still keeps its own state table so that the *reverse* flow's
//! first packet (which misses the switch cache) does not trigger a fresh
//! ident++ query cycle.

use std::collections::HashMap;

use identxx_proto::FiveTuple;

use crate::eval::Decision;

/// A single state entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateEntry {
    /// The decision cached for this flow.
    pub decision: Decision,
    /// Simulation/wall-clock time (in arbitrary ticks) the entry was created.
    pub created_at: u64,
    /// Time after which the entry is no longer valid.
    pub expires_at: u64,
    /// How many packets/lookups have hit this entry.
    pub hits: u64,
}

/// A state table keyed by the canonical (direction-independent) 5-tuple.
#[derive(Debug, Clone, Default)]
pub struct StateTable {
    entries: HashMap<FiveTuple, StateEntry>,
    /// Lifetime given to new entries, in ticks.
    ttl: u64,
}

/// Default state lifetime in ticks (the simulator uses microseconds, so this
/// is 60 seconds).
pub const DEFAULT_STATE_TTL: u64 = 60_000_000;

impl StateTable {
    /// Creates a state table with the default TTL.
    pub fn new() -> Self {
        StateTable {
            entries: HashMap::new(),
            ttl: DEFAULT_STATE_TTL,
        }
    }

    /// Creates a state table with a specific TTL (in ticks).
    pub fn with_ttl(ttl: u64) -> Self {
        StateTable {
            entries: HashMap::new(),
            ttl,
        }
    }

    /// Records state for a flow at time `now`.
    pub fn insert(&mut self, flow: &FiveTuple, decision: Decision, now: u64) {
        self.entries.insert(
            flow.canonical(),
            StateEntry {
                decision,
                created_at: now,
                expires_at: now.saturating_add(self.ttl),
                hits: 0,
            },
        );
    }

    /// Looks up state for a flow (either direction) at time `now`, counting a
    /// hit. Expired entries are removed lazily and reported as misses.
    pub fn lookup(&mut self, flow: &FiveTuple, now: u64) -> Option<StateEntry> {
        let key = flow.canonical();
        match self.entries.get_mut(&key) {
            Some(entry) if entry.expires_at > now => {
                entry.hits += 1;
                Some(*entry)
            }
            Some(_) => {
                self.entries.remove(&key);
                None
            }
            None => None,
        }
    }

    /// Non-mutating check whether valid state exists for the flow.
    pub fn contains(&self, flow: &FiveTuple, now: u64) -> bool {
        self.entries
            .get(&flow.canonical())
            .map(|e| e.expires_at > now)
            .unwrap_or(false)
    }

    /// Removes state for a flow (revocation).
    pub fn remove(&mut self, flow: &FiveTuple) -> bool {
        self.entries.remove(&flow.canonical()).is_some()
    }

    /// Removes every expired entry, returning how many were purged.
    pub fn purge_expired(&mut self, now: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires_at > now);
        before - self.entries.len()
    }

    /// Removes all entries (e.g. when policy changes and cached decisions may
    /// no longer be valid).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of (possibly expired) entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FiveTuple {
        FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80)
    }

    #[test]
    fn insert_and_lookup_both_directions() {
        let mut table = StateTable::new();
        table.insert(&flow(), Decision::Pass, 0);
        assert!(table.lookup(&flow(), 10).is_some());
        assert!(table.lookup(&flow().reversed(), 10).is_some());
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn entries_expire() {
        let mut table = StateTable::with_ttl(100);
        table.insert(&flow(), Decision::Pass, 0);
        assert!(table.lookup(&flow(), 99).is_some());
        assert!(table.lookup(&flow(), 100).is_none());
        // Expired lookup removed the entry lazily.
        assert!(table.is_empty());
    }

    #[test]
    fn hits_are_counted() {
        let mut table = StateTable::new();
        table.insert(&flow(), Decision::Pass, 0);
        table.lookup(&flow(), 1);
        table.lookup(&flow(), 2);
        let e = table.lookup(&flow(), 3).unwrap();
        assert_eq!(e.hits, 3);
    }

    #[test]
    fn remove_and_clear() {
        let mut table = StateTable::new();
        table.insert(&flow(), Decision::Pass, 0);
        assert!(table.remove(&flow().reversed()));
        assert!(!table.remove(&flow()));
        table.insert(&flow(), Decision::Block, 0);
        table.clear();
        assert!(table.is_empty());
    }

    #[test]
    fn purge_expired_counts() {
        let mut table = StateTable::with_ttl(10);
        table.insert(&flow(), Decision::Pass, 0);
        let other = FiveTuple::tcp([10, 0, 0, 3], 1, [10, 0, 0, 4], 2);
        table.insert(&other, Decision::Pass, 100);
        assert_eq!(table.purge_expired(50), 1);
        assert_eq!(table.len(), 1);
        assert!(table.contains(&other, 105));
        assert!(!table.contains(&other, 200));
    }

    #[test]
    fn block_decisions_can_be_cached_too() {
        let mut table = StateTable::new();
        table.insert(&flow(), Decision::Block, 0);
        assert_eq!(table.lookup(&flow(), 1).unwrap().decision, Decision::Block);
    }
}
