//! The `keep state` state table.
//!
//! When a rule with `keep state` passes a flow, PF records the flow so that
//! subsequent packets — in either direction — are admitted without
//! re-evaluating the rule set. In an ident++/OpenFlow deployment the flow
//! table in the switches plays this caching role for the data path; the
//! controller still keeps its own state table so that the *reverse* flow's
//! first packet (which misses the switch cache) does not trigger a fresh
//! ident++ query cycle.

use std::collections::HashMap;

use identxx_proto::FiveTuple;

use crate::eval::Decision;

/// How much of the 5-tuple the state table keys its entries by.
///
/// The paper's controller caches *rules*, not flows: "the controller may
/// cache the rules and apply them to future flows" (§3.4). An exact
/// 5-tuple key only ever matches a retransmission of the same flow — a
/// client that reconnects from a fresh source port misses every time, so
/// workloads with ephemeral ports see 2.00 queries/flow regardless of
/// locality (the E8b failure mode). Coarser keys trade a little precision
/// (the cached decision is reused for any flow between the same hosts /
/// service) for a cache that actually warms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheGranularity {
    /// Key by the canonical 5-tuple: only an identical flow (either
    /// direction) hits. The conservative default.
    #[default]
    ExactFiveTuple,
    /// Key by the host pair, protocol, and the *destination* port of the
    /// decided direction — the service side — with the source (ephemeral)
    /// port erased. A client reconnecting from a new ephemeral port to the
    /// same service hits the cached decision; a flow to a different port on
    /// the same host does not. No port-magnitude heuristic is involved:
    /// the service port is simply the `dst_port` of the flow that was
    /// decided. Because this key is direction-dependent, decided flows are
    /// *also* recorded under their exact canonical tuple, so the reverse
    /// flow's first packet still hits without a mirrored-key lookup (a
    /// mirrored lookup would let a fresh flow whose ephemeral source port
    /// happens to equal a cached service port alias an unrelated entry).
    HostPairDstPort,
    /// Key by the unordered host pair and protocol alone. Any flow between
    /// the two hosts shares one entry.
    HostPair,
}

impl CacheGranularity {
    /// Reduces a flow to the map key for this granularity. The key is itself
    /// a (possibly port-erased) `FiveTuple` so the table never needs a
    /// second key type.
    ///
    /// For [`CacheGranularity::HostPairDstPort`] the key preserves the
    /// flow's direction (client side first, service port kept on the
    /// destination); the table keeps reverse traffic working by recording
    /// decided flows under [`CacheGranularity::secondary_key`] as well.
    pub fn key(&self, flow: &FiveTuple) -> FiveTuple {
        match self {
            CacheGranularity::ExactFiveTuple => flow.canonical(),
            CacheGranularity::HostPairDstPort => {
                let mut key = *flow;
                key.src_port = 0;
                key
            }
            CacheGranularity::HostPair => {
                // Order the hosts by address so both directions reduce to
                // the same key.
                let mut key = if flow.src_ip <= flow.dst_ip {
                    *flow
                } else {
                    flow.reversed()
                };
                key.src_port = 0;
                key.dst_port = 0;
                key
            }
        }
    }

    /// A second, exact key decided flows are also recorded under when the
    /// primary key is direction-dependent.
    ///
    /// The service-port-preserving key cannot serve the reverse flow's
    /// first packet (the reverse tuple carries the service port on its
    /// source side), and looking entries up under a *mirrored* coarse key
    /// would be unsound: a fresh flow whose ephemeral source port equals a
    /// previously cached service port between the same hosts would be
    /// served that unrelated service's decision. Recording the exact
    /// canonical tuple as well keeps genuine reverse traffic hitting while
    /// never aliasing across services.
    pub fn secondary_key(&self, flow: &FiveTuple) -> Option<FiveTuple> {
        match self {
            CacheGranularity::ExactFiveTuple | CacheGranularity::HostPair => None,
            CacheGranularity::HostPairDstPort => Some(flow.canonical()),
        }
    }
}

/// A single state entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateEntry {
    /// The decision cached for this flow.
    pub decision: Decision,
    /// Simulation/wall-clock time (in arbitrary ticks) the entry was created.
    pub created_at: u64,
    /// Time after which the entry is no longer valid.
    pub expires_at: u64,
    /// How many packets/lookups have hit this entry.
    pub hits: u64,
}

/// A state table keyed by a canonical (direction-independent) reduction of
/// the 5-tuple, as chosen by its [`CacheGranularity`].
#[derive(Debug, Clone, Default)]
pub struct StateTable {
    entries: HashMap<FiveTuple, StateEntry>,
    /// Lifetime given to new entries, in ticks.
    ttl: u64,
    /// How much of the 5-tuple keys an entry.
    granularity: CacheGranularity,
}

/// Default state lifetime in ticks (the simulator uses microseconds, so this
/// is 60 seconds).
pub const DEFAULT_STATE_TTL: u64 = 60_000_000;

impl StateTable {
    /// Creates a state table with the default TTL.
    pub fn new() -> Self {
        StateTable {
            entries: HashMap::new(),
            ttl: DEFAULT_STATE_TTL,
            granularity: CacheGranularity::default(),
        }
    }

    /// Creates a state table with a specific TTL (in ticks).
    pub fn with_ttl(ttl: u64) -> Self {
        StateTable {
            entries: HashMap::new(),
            ttl,
            granularity: CacheGranularity::default(),
        }
    }

    /// Sets the key granularity (builder style). Changing granularity on a
    /// populated table would orphan existing entries, so this clears it.
    pub fn with_granularity(mut self, granularity: CacheGranularity) -> Self {
        self.entries.clear();
        self.granularity = granularity;
        self
    }

    /// The key granularity in effect.
    pub fn granularity(&self) -> CacheGranularity {
        self.granularity
    }

    /// Records state for a flow at time `now`, under the granularity's key
    /// and (when that key is direction-dependent) the exact canonical tuple
    /// too, so the reverse flow's first packet hits.
    pub fn insert(&mut self, flow: &FiveTuple, decision: Decision, now: u64) {
        let entry = StateEntry {
            decision,
            created_at: now,
            expires_at: now.saturating_add(self.ttl),
            hits: 0,
        };
        self.entries.insert(self.granularity.key(flow), entry);
        if let Some(secondary) = self.granularity.secondary_key(flow) {
            self.entries.insert(secondary, entry);
        }
    }

    /// Looks up state for a flow (either direction) at time `now`, counting a
    /// hit. Expired entries are removed lazily and reported as misses.
    pub fn lookup(&mut self, flow: &FiveTuple, now: u64) -> Option<StateEntry> {
        let keys = [
            Some(self.granularity.key(flow)),
            self.granularity.secondary_key(flow),
        ];
        for key in keys.into_iter().flatten() {
            match self.entries.get_mut(&key) {
                Some(entry) if entry.expires_at > now => {
                    entry.hits += 1;
                    return Some(*entry);
                }
                Some(_) => {
                    self.entries.remove(&key);
                }
                None => {}
            }
        }
        None
    }

    /// Non-mutating check whether valid state exists for the flow.
    pub fn contains(&self, flow: &FiveTuple, now: u64) -> bool {
        let keys = [
            Some(self.granularity.key(flow)),
            self.granularity.secondary_key(flow),
        ];
        keys.into_iter()
            .flatten()
            .any(|key| self.entries.get(&key).map(|e| e.expires_at > now) == Some(true))
    }

    /// Removes state for a flow, under every key it may have been recorded
    /// with — **in either direction** (revocation).
    ///
    /// Revocation must fail safe: an entry that survives because the caller
    /// held the reverse-direction tuple would keep serving a revoked `Pass`,
    /// so for direction-dependent granularities the mirrored coarse key is
    /// removed too. This is deliberately aggressive — it may also drop a
    /// same-hosts entry whose service port equals this flow's source port,
    /// which merely costs that service one fresh query cycle.
    pub fn remove(&mut self, flow: &FiveTuple) -> bool {
        let reversed = flow.reversed();
        let keys = [
            Some(self.granularity.key(flow)),
            self.granularity.secondary_key(flow),
            match self.granularity {
                CacheGranularity::ExactFiveTuple | CacheGranularity::HostPair => None,
                CacheGranularity::HostPairDstPort => Some(self.granularity.key(&reversed)),
            },
        ];
        let mut removed = false;
        for key in keys.into_iter().flatten() {
            removed |= self.entries.remove(&key).is_some();
        }
        removed
    }

    /// Removes every expired entry, returning how many were purged.
    pub fn purge_expired(&mut self, now: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires_at > now);
        before - self.entries.len()
    }

    /// Removes all entries (e.g. when policy changes and cached decisions may
    /// no longer be valid).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Removes and returns every entry whose **stored key** satisfies the
    /// predicate — the handoff half of live resharding. Keys are the
    /// granularity-normalized tuples the table indexes by, so a router that
    /// normalizes at least as coarsely routes a stored key exactly where it
    /// routes the flows that produced it. Entries come back verbatim
    /// (`created_at`, `expires_at`, `hits` untouched): a migrated entry must
    /// behave on its new shard precisely as it would have on the old one.
    pub fn extract_where<F: FnMut(&FiveTuple) -> bool>(
        &mut self,
        mut pred: F,
    ) -> Vec<(FiveTuple, StateEntry)> {
        let mut extracted = Vec::new();
        self.entries.retain(|key, entry| {
            if pred(key) {
                extracted.push((*key, *entry));
                false
            } else {
                true
            }
        });
        extracted
    }

    /// Installs entries previously taken by [`StateTable::extract_where`]
    /// under their original keys, verbatim. The absorbing table must use the
    /// same granularity as the extracting one (the keys are already
    /// normalized under it); callers hand entries between tables built from
    /// one configuration, which guarantees that.
    pub fn absorb(&mut self, entries: impl IntoIterator<Item = (FiveTuple, StateEntry)>) {
        for (key, entry) in entries {
            self.entries.insert(key, entry);
        }
    }

    /// Every stored `(key, entry)` pair, in arbitrary order (drill suites
    /// use this to prove resharding conserves entries).
    pub fn entries(&self) -> impl Iterator<Item = (&FiveTuple, &StateEntry)> {
        self.entries.iter()
    }

    /// Number of (possibly expired) entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FiveTuple {
        FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 2], 80)
    }

    #[test]
    fn insert_and_lookup_both_directions() {
        let mut table = StateTable::new();
        table.insert(&flow(), Decision::Pass, 0);
        assert!(table.lookup(&flow(), 10).is_some());
        assert!(table.lookup(&flow().reversed(), 10).is_some());
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn entries_expire() {
        let mut table = StateTable::with_ttl(100);
        table.insert(&flow(), Decision::Pass, 0);
        assert!(table.lookup(&flow(), 99).is_some());
        assert!(table.lookup(&flow(), 100).is_none());
        // Expired lookup removed the entry lazily.
        assert!(table.is_empty());
    }

    #[test]
    fn hits_are_counted() {
        let mut table = StateTable::new();
        table.insert(&flow(), Decision::Pass, 0);
        table.lookup(&flow(), 1);
        table.lookup(&flow(), 2);
        let e = table.lookup(&flow(), 3).unwrap();
        assert_eq!(e.hits, 3);
    }

    #[test]
    fn remove_and_clear() {
        let mut table = StateTable::new();
        table.insert(&flow(), Decision::Pass, 0);
        assert!(table.remove(&flow().reversed()));
        assert!(!table.remove(&flow()));
        table.insert(&flow(), Decision::Block, 0);
        table.clear();
        assert!(table.is_empty());
    }

    #[test]
    fn purge_expired_counts() {
        let mut table = StateTable::with_ttl(10);
        table.insert(&flow(), Decision::Pass, 0);
        let other = FiveTuple::tcp([10, 0, 0, 3], 1, [10, 0, 0, 4], 2);
        table.insert(&other, Decision::Pass, 100);
        assert_eq!(table.purge_expired(50), 1);
        assert_eq!(table.len(), 1);
        assert!(table.contains(&other, 105));
        assert!(!table.contains(&other, 200));
    }

    #[test]
    fn host_pair_dst_port_granularity_survives_fresh_source_ports() {
        let mut table = StateTable::new().with_granularity(CacheGranularity::HostPairDstPort);
        table.insert(&flow(), Decision::Pass, 0);
        // Same client/server/service, new ephemeral port: hits.
        let reconnect = FiveTuple::tcp([10, 0, 0, 1], 51723, [10, 0, 0, 2], 80);
        assert!(table.lookup(&reconnect, 1).is_some());
        // The decided flow's reverse direction hits via the exact secondary
        // entry.
        assert!(table.lookup(&flow().reversed(), 2).is_some());
        // Different service port: misses.
        let other_service = FiveTuple::tcp([10, 0, 0, 1], 51724, [10, 0, 0, 2], 443);
        assert!(table.lookup(&other_service, 3).is_none());
        // Different destination host: misses.
        let other_host = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 9], 80);
        assert!(table.lookup(&other_host, 4).is_none());
        // One decided flow = the coarse entry plus the exact-tuple entry.
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn host_pair_dst_port_key_is_the_service_port_not_the_smaller_port() {
        let mut table = StateTable::new().with_granularity(CacheGranularity::HostPairDstPort);
        // The service port (34000) is numerically *above* the client's
        // ephemeral port: the key must still be the destination port.
        let flow = FiveTuple::tcp([10, 0, 0, 1], 32768, [10, 0, 0, 2], 34000);
        table.insert(&flow, Decision::Pass, 0);
        let reconnect = FiveTuple::tcp([10, 0, 0, 1], 32769, [10, 0, 0, 2], 34000);
        assert!(table.lookup(&reconnect, 1).is_some());
        assert!(table.lookup(&flow.reversed(), 2).is_some());

        // A cached decision for one service must never serve a *different*
        // destination port, whatever the port magnitudes: here both flows
        // share the source port 2000 (below both destination ports), which
        // a min-port key would have collided into one entry.
        let mut table = StateTable::new().with_granularity(CacheGranularity::HostPairDstPort);
        let first = FiveTuple::tcp([10, 0, 0, 1], 2000, [10, 0, 0, 2], 8080);
        table.insert(&first, Decision::Pass, 0);
        let other_service = FiveTuple::tcp([10, 0, 0, 1], 2000, [10, 0, 0, 2], 9090);
        assert!(
            table.lookup(&other_service, 1).is_none(),
            "a different service must never be served another service's cached decision"
        );
    }

    #[test]
    fn host_pair_dst_port_never_aliases_via_mirrored_source_ports() {
        // A fresh flow whose *ephemeral source port* happens to equal a
        // previously cached service port between the same hosts must not be
        // served that unrelated entry (a mirrored-key lookup would).
        let mut table = StateTable::new().with_granularity(CacheGranularity::HostPairDstPort);
        let service_flow = FiveTuple::tcp([10, 0, 0, 2], 51000, [10, 0, 0, 1], 34000);
        table.insert(&service_flow, Decision::Block, 0);
        // A's new connection to B's port 80, unluckily from source port
        // 34000 — a different flow entirely.
        let unlucky = FiveTuple::tcp([10, 0, 0, 1], 34000, [10, 0, 0, 2], 80);
        assert!(
            table.lookup(&unlucky, 1).is_none(),
            "source-port coincidence must not alias another service's entry"
        );
    }

    #[test]
    fn host_pair_dst_port_revocation_works_from_either_direction() {
        // A cache-served reverse flow is audited with the reversed tuple;
        // revocation called with that tuple must still kill the coarse
        // service entry (a surviving entry would keep serving a revoked
        // Pass — the fail-unsafe direction).
        let mut table = StateTable::new().with_granularity(CacheGranularity::HostPairDstPort);
        table.insert(&flow(), Decision::Pass, 0);
        assert!(table.remove(&flow().reversed()));
        let reconnect = FiveTuple::tcp([10, 0, 0, 1], 51723, [10, 0, 0, 2], 80);
        assert!(
            table.lookup(&reconnect, 1).is_none(),
            "revocation from the reverse tuple must remove the coarse entry"
        );
        assert!(table.is_empty());
    }

    #[test]
    fn host_pair_granularity_ignores_ports_entirely() {
        let mut table = StateTable::new().with_granularity(CacheGranularity::HostPair);
        table.insert(&flow(), Decision::Pass, 0);
        let other_service = FiveTuple::tcp([10, 0, 0, 2], 9999, [10, 0, 0, 1], 22);
        assert!(table.lookup(&other_service, 1).is_some());
        // Same ports, different pair: misses.
        let other_pair = FiveTuple::tcp([10, 0, 0, 1], 40000, [10, 0, 0, 3], 80);
        assert!(table.lookup(&other_pair, 2).is_none());
    }

    #[test]
    fn exact_granularity_still_misses_on_fresh_source_ports() {
        let mut table = StateTable::new();
        assert_eq!(table.granularity(), CacheGranularity::ExactFiveTuple);
        table.insert(&flow(), Decision::Pass, 0);
        let reconnect = FiveTuple::tcp([10, 0, 0, 1], 51723, [10, 0, 0, 2], 80);
        assert!(table.lookup(&reconnect, 1).is_none());
    }

    #[test]
    fn changing_granularity_clears_entries() {
        let mut table = StateTable::new();
        table.insert(&flow(), Decision::Pass, 0);
        table = table.with_granularity(CacheGranularity::HostPair);
        assert!(table.is_empty());
    }

    #[test]
    fn block_decisions_can_be_cached_too() {
        let mut table = StateTable::new();
        table.insert(&flow(), Decision::Block, 0);
        assert_eq!(table.lookup(&flow(), 1).unwrap().decision, Decision::Block);
    }
}
