//! PF `table` definitions: named sets of addresses and networks.
//!
//! Tables may nest (Fig. 2: `table <int_hosts> { <lan> <server> }`), so
//! membership resolution follows table references with a cycle guard.

use std::collections::BTreeMap;

use identxx_proto::Ipv4Addr;

use crate::ast::AddrSpec;
use crate::error::PfError;

/// An entry of a table: an address, a network, or a reference to another
/// table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TableEntry {
    /// A single host address.
    Host(Ipv4Addr),
    /// A CIDR network.
    Cidr {
        /// Network address.
        network: Ipv4Addr,
        /// Prefix length.
        prefix_len: u8,
    },
    /// A reference to another named table.
    TableRef(String),
}

impl TableEntry {
    /// Parses a table entry token: `192.168.1.1`, `192.168.0.0/24`. Table
    /// references are produced by the parser from `<name>` syntax, not here.
    pub fn parse_addr(token: &str) -> Result<TableEntry, PfError> {
        parse_addr_spec(token).map(|spec| match spec {
            AddrSpec::Host(a) => TableEntry::Host(a),
            AddrSpec::Cidr {
                network,
                prefix_len,
            } => TableEntry::Cidr {
                network,
                prefix_len,
            },
            // parse_addr_spec never returns Any/Table for plain tokens.
            _ => unreachable!("parse_addr_spec returned non-address for token"),
        })
    }
}

/// Parses an address token into an [`AddrSpec`] (host or CIDR).
pub fn parse_addr_spec(token: &str) -> Result<AddrSpec, PfError> {
    if let Some((net, len)) = token.split_once('/') {
        let network: Ipv4Addr = net
            .parse()
            .map_err(|_| PfError::BadAddress(token.to_string()))?;
        let prefix_len: u8 = len
            .parse()
            .map_err(|_| PfError::BadAddress(token.to_string()))?;
        if prefix_len > 32 {
            return Err(PfError::BadAddress(token.to_string()));
        }
        Ok(AddrSpec::Cidr {
            network,
            prefix_len,
        })
    } else {
        let host: Ipv4Addr = token
            .parse()
            .map_err(|_| PfError::BadAddress(token.to_string()))?;
        Ok(AddrSpec::Host(host))
    }
}

/// A named table: an ordered set of entries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    entries: Vec<TableEntry>,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Creates a table from entries.
    pub fn from_entries(entries: Vec<TableEntry>) -> Self {
        Table { entries }
    }

    /// Adds an entry.
    pub fn push(&mut self, entry: TableEntry) {
        self.entries.push(entry);
    }

    /// The entries of the table.
    pub fn entries(&self) -> &[TableEntry] {
        &self.entries
    }

    /// Tests whether `addr` belongs to this table, resolving nested table
    /// references through `all_tables`. Unknown referenced tables are treated
    /// as empty (PF loads tables dynamically, so a missing table is not a
    /// match failure for the whole rule set); reference cycles terminate.
    pub fn contains(&self, addr: Ipv4Addr, all_tables: &BTreeMap<String, Table>) -> bool {
        let mut visiting: Vec<&str> = Vec::new();
        self.contains_inner(addr, all_tables, &mut visiting)
    }

    fn contains_inner<'a>(
        &'a self,
        addr: Ipv4Addr,
        all_tables: &'a BTreeMap<String, Table>,
        visiting: &mut Vec<&'a str>,
    ) -> bool {
        for entry in &self.entries {
            match entry {
                TableEntry::Host(h) => {
                    if *h == addr {
                        return true;
                    }
                }
                TableEntry::Cidr {
                    network,
                    prefix_len,
                } => {
                    if addr.in_prefix(*network, *prefix_len) {
                        return true;
                    }
                }
                TableEntry::TableRef(name) => {
                    if visiting.iter().any(|v| v == name) {
                        continue; // cycle guard
                    }
                    if let Some(inner) = all_tables.get(name.as_str()) {
                        visiting.push(name);
                        let hit = inner.contains_inner(addr, all_tables, visiting);
                        visiting.pop();
                        if hit {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Visits every non-reference entry reachable from this table, following
    /// nested table references. Each referenced table is visited at most once
    /// (so cycles terminate) and missing tables are skipped, mirroring the
    /// semantics of [`Table::contains`]. The policy compiler uses this to
    /// flatten table trees into binary-searchable address sets.
    pub fn visit_flattened<'a, F: FnMut(&'a TableEntry)>(
        &'a self,
        all_tables: &'a BTreeMap<String, Table>,
        mut visit: F,
    ) {
        let mut visited: Vec<&Table> = Vec::new();
        let mut stack: Vec<&Table> = vec![self];
        while let Some(table) = stack.pop() {
            if visited.iter().any(|t| std::ptr::eq(*t, table)) {
                continue;
            }
            visited.push(table);
            for entry in &table.entries {
                match entry {
                    TableEntry::TableRef(name) => {
                        if let Some(inner) = all_tables.get(name.as_str()) {
                            stack.push(inner);
                        }
                    }
                    concrete => visit(concrete),
                }
            }
        }
    }

    /// Number of (direct) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables_fixture() -> BTreeMap<String, Table> {
        let mut tables = BTreeMap::new();
        tables.insert(
            "server".to_string(),
            Table::from_entries(vec![TableEntry::Host(Ipv4Addr::new(192, 168, 1, 1))]),
        );
        tables.insert(
            "lan".to_string(),
            Table::from_entries(vec![TableEntry::Cidr {
                network: Ipv4Addr::new(192, 168, 0, 0),
                prefix_len: 24,
            }]),
        );
        tables.insert(
            "int_hosts".to_string(),
            Table::from_entries(vec![
                TableEntry::TableRef("lan".to_string()),
                TableEntry::TableRef("server".to_string()),
            ]),
        );
        tables
    }

    #[test]
    fn host_and_cidr_membership() {
        let tables = tables_fixture();
        let lan = &tables["lan"];
        assert!(lan.contains(Ipv4Addr::new(192, 168, 0, 55), &tables));
        assert!(!lan.contains(Ipv4Addr::new(192, 168, 1, 55), &tables));
        let server = &tables["server"];
        assert!(server.contains(Ipv4Addr::new(192, 168, 1, 1), &tables));
        assert!(!server.contains(Ipv4Addr::new(192, 168, 1, 2), &tables));
    }

    #[test]
    fn nested_table_membership() {
        let tables = tables_fixture();
        let int_hosts = &tables["int_hosts"];
        assert!(int_hosts.contains(Ipv4Addr::new(192, 168, 0, 9), &tables));
        assert!(int_hosts.contains(Ipv4Addr::new(192, 168, 1, 1), &tables));
        assert!(!int_hosts.contains(Ipv4Addr::new(10, 0, 0, 1), &tables));
    }

    #[test]
    fn missing_table_reference_is_empty() {
        let tables = tables_fixture();
        let t = Table::from_entries(vec![TableEntry::TableRef("nonexistent".to_string())]);
        assert!(!t.contains(Ipv4Addr::new(1, 2, 3, 4), &tables));
    }

    #[test]
    fn reference_cycles_terminate() {
        let mut tables = BTreeMap::new();
        tables.insert(
            "a".to_string(),
            Table::from_entries(vec![
                TableEntry::TableRef("b".to_string()),
                TableEntry::Host(Ipv4Addr::new(10, 0, 0, 1)),
            ]),
        );
        tables.insert(
            "b".to_string(),
            Table::from_entries(vec![TableEntry::TableRef("a".to_string())]),
        );
        assert!(tables["a"].contains(Ipv4Addr::new(10, 0, 0, 1), &tables));
        assert!(!tables["b"].contains(Ipv4Addr::new(99, 0, 0, 1), &tables));
    }

    #[test]
    fn parse_addr_entries() {
        assert_eq!(
            TableEntry::parse_addr("192.168.42.32").unwrap(),
            TableEntry::Host(Ipv4Addr::new(192, 168, 42, 32))
        );
        assert_eq!(
            TableEntry::parse_addr("123.123.123.0/24").unwrap(),
            TableEntry::Cidr {
                network: Ipv4Addr::new(123, 123, 123, 0),
                prefix_len: 24
            }
        );
        assert!(TableEntry::parse_addr("10.0.0.0/64").is_err());
        assert!(TableEntry::parse_addr("hostname").is_err());
    }

    #[test]
    fn len_and_empty() {
        let t = Table::new();
        assert!(t.is_empty());
        let t = tables_fixture()["int_hosts"].clone();
        assert_eq!(t.len(), 2);
    }
}
