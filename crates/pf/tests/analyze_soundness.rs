//! Property test: the static analyzer's dead-rule verdicts are *sound*.
//!
//! `analyze` may stay silent about rules that never decide (it is
//! deliberately conservative), but when it reports [`Category::ShadowedRule`]
//! or [`Category::Unsatisfiable`] for a rule, that rule must never be the
//! deciding rule of any flow under the reference interpreter — for any flow
//! and any daemon responses. Randomized rule sets are generated with a heavy
//! bias toward overlapping endpoints and repeated predicates (so shadowing
//! actually occurs), then every sampled flow/response combination is
//! evaluated through `EvalContext` and the matched rule is checked against
//! the analyzer's kill list.

use proptest::prelude::*;

use identxx_pf::{analyze, parse_ruleset, AnalysisOptions, Category, EvalContext};
use identxx_proto::{FiveTuple, IpProtocol, Ipv4Addr, Response, Section};

/// Small pools (shared shape with `tests/compiled_equivalence.rs`) so random
/// rules overlap and random flows hit them.
const ADDRS: [[u8; 4]; 5] = [
    [192, 168, 0, 10],
    [192, 168, 0, 77],
    [192, 168, 1, 1],
    [10, 0, 0, 5],
    [8, 8, 8, 8],
];

const PORTS: [u16; 5] = [80, 443, 22, 1500, 7000];

const VALUES: [&str; 5] = ["skype", "firefox", "users wheel", "210", "150"];

const KEYS: [&str; 3] = ["name", "version", "groupID"];

fn arb_endpoint() -> impl Strategy<Value = String> {
    // The vendored proptest has no weighted `prop_oneof!`; repetition biases
    // toward `any` endpoints and portless rules, which is what makes rules
    // overlap often enough for shadowing to occur.
    let addr = prop_oneof![
        Just("any".to_string()),
        Just("any".to_string()),
        Just("any".to_string()),
        Just("192.168.0.0/24".to_string()),
        Just("192.168.0.0/24".to_string()),
        Just("192.168.0.10".to_string()),
        Just("192.168.0.10".to_string()),
        Just("10.0.0.0/8".to_string()),
        Just("<lan>".to_string()),
        Just("!192.168.0.0/24".to_string()),
    ];
    let port = prop_oneof![
        Just(String::new()),
        Just(String::new()),
        Just(String::new()),
        Just(String::new()),
        Just(" port 80".to_string()),
        Just(" port 80".to_string()),
        Just(" port http".to_string()),
        Just(" port nosuchservice".to_string()),
        Just(" port 1000:2000".to_string()),
    ];
    (addr, port).prop_map(|(addr, port)| format!("{addr}{port}"))
}

/// A deliberately tiny predicate vocabulary: shadowing requires the earlier
/// rule's predicates to be a superset of the later rule's, which only
/// happens when identical predicate text recurs across rules.
fn arb_predicate() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("eq(@src[name], skype)".to_string()),
        Just("eq(@src[name], firefox)".to_string()),
        Just("gt(@src[version], 200)".to_string()),
        Just("exists(@dst[groupID])".to_string()),
        Just("member(@src[groupID], users)".to_string()),
        Just("eq(@src[version], @src[version])".to_string()),
        Just("ne(@src[name], @src[name])".to_string()),
    ]
}

fn arb_rule() -> impl Strategy<Value = String> {
    let proto = prop_oneof![
        Just(String::new()),
        Just(String::new()),
        Just(String::new()),
        Just(" proto tcp".to_string()),
        Just(" proto udp".to_string()),
    ];
    (
        any::<bool>(),
        (0u8..8).prop_map(|q| q == 0),
        proto,
        prop_oneof![
            Just(None),
            (arb_endpoint(), arb_endpoint()).prop_map(Some),
            (arb_endpoint(), arb_endpoint()).prop_map(Some),
        ],
        prop::collection::vec(arb_predicate(), 0..3),
        any::<bool>(),
    )
        .prop_map(|(pass, quick, proto, endpoints, preds, keep)| {
            let mut rule = String::from(if pass { "pass" } else { "block" });
            if quick {
                rule.push_str(" quick");
            }
            rule.push_str(&proto);
            match endpoints {
                None => rule.push_str(" all"),
                Some((from, to)) => {
                    rule.push_str(" from ");
                    rule.push_str(&from);
                    rule.push_str(" to ");
                    rule.push_str(&to);
                }
            }
            for pred in preds {
                rule.push_str(" with ");
                rule.push_str(&pred);
            }
            if keep {
                rule.push_str(" keep state");
            }
            rule
        })
}

fn arb_ruleset_text() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_rule(), 2..9).prop_map(|rules| {
        let mut text = String::from("table <lan> { 192.168.0.0/24 }\n");
        for rule in rules {
            text.push_str(&rule);
            text.push('\n');
        }
        text
    })
}

fn arb_flow() -> impl Strategy<Value = FiveTuple> {
    (
        0usize..ADDRS.len(),
        0usize..ADDRS.len(),
        0usize..PORTS.len(),
        0usize..PORTS.len(),
        prop_oneof![Just(IpProtocol::Tcp), Just(IpProtocol::Udp)],
    )
        .prop_map(|(s, d, sp, dp, proto)| {
            FiveTuple::new(
                Ipv4Addr::from(ADDRS[s]),
                PORTS[sp],
                Ipv4Addr::from(ADDRS[d]),
                PORTS[dp],
                proto,
            )
        })
}

fn arb_response(flow: FiveTuple) -> impl Strategy<Value = Option<Response>> {
    let section = prop::collection::vec((0usize..KEYS.len(), 0usize..VALUES.len()), 1..4);
    prop_oneof![
        Just(None),
        prop::collection::vec(section, 0..3).prop_map(move |sections| {
            let mut response = Response::new(flow);
            for pairs in sections {
                let mut s = Section::new();
                for (k, v) in pairs {
                    s.push(KEYS[k], VALUES[v]);
                }
                response.push_section(s);
            }
            Some(response)
        }),
    ]
}

/// Guards the property against vacuity: a ruleset the analyzer must flag,
/// so the kill-list comparison in the property actually bites.
#[test]
fn generator_shapes_do_produce_dead_rules() {
    let text = "table <lan> { 192.168.0.0/24 }\n\
                pass from 192.168.0.10 to any\n\
                pass proto tcp all with eq(@src[name], skype) with eq(@src[name], firefox)\n\
                pass from 192.168.0.0/24 to any\n";
    let ruleset = parse_ruleset(text).unwrap();
    let options = AnalysisOptions {
        named_lists: vec!["users".to_string()],
        ..AnalysisOptions::default()
    };
    let diags = analyze(&ruleset, &options);
    let dead: Vec<usize> = diags
        .iter()
        .filter(|d| matches!(d.category, Category::ShadowedRule | Category::Unsatisfiable))
        .filter_map(|d| d.rule_index)
        .collect();
    assert!(
        dead.contains(&0),
        "host rule shadowed by the later /24 rule: {diags:?}"
    );
    assert!(
        dead.contains(&1),
        "contradictory equality constraints never match: {diags:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rules_reported_dead_never_decide_a_flow(
        text in arb_ruleset_text(),
        flows in prop::collection::vec(arb_flow(), 8..9),
        seed in any::<u32>(),
    ) {
        let ruleset = parse_ruleset(&text).unwrap();

        let options = AnalysisOptions {
            named_lists: vec!["users".to_string()],
            ..AnalysisOptions::default()
        };
        let dead: Vec<usize> = analyze(&ruleset, &options)
            .into_iter()
            .filter(|d| {
                matches!(d.category, Category::ShadowedRule | Category::Unsatisfiable)
            })
            .filter_map(|d| d.rule_index)
            .collect();

        // Each sampled flow is paired with freshly drawn responses so the
        // predicate layer varies too, not just the packet layer.
        let mut rng =
            proptest::test_runner::TestRng::deterministic(&format!("soundness-{seed}"));
        for flow in flows {
            let src = arb_response(flow).generate(&mut rng);
            let dst = arb_response(flow).generate(&mut rng);
            let mut ctx = EvalContext::new(&ruleset)
                .with_named_list("users", vec!["users".to_string()]);
            if let Some(src) = &src {
                ctx = ctx.with_src_response(src);
            }
            if let Some(dst) = &dst {
                ctx = ctx.with_dst_response(dst);
            }
            let verdict = ctx.evaluate(&flow);
            if let Some(matched) = verdict.matched_rule {
                prop_assert!(
                    !dead.contains(&matched),
                    "rule {} was reported dead but decided flow {:?}\nruleset:\n{}",
                    matched,
                    flow,
                    text
                );
            }
        }
    }
}
