//! Proves the acceptance criterion that steady-state compiled evaluation is
//! allocation-free for rules without `allowed()` / dynamic-list predicates.
//!
//! The whole test binary runs under a counting global allocator; the single
//! test warms the evaluation path, then asserts that a burst of evaluations
//! performs zero heap allocations. This file must keep exactly one `#[test]`
//! so no concurrent test can pollute the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use identxx_net::RetryPolicy;
use identxx_pf::{parse_ruleset, CompiledPolicy, Decision, PolicyCompiler};
use identxx_proto::{FiveTuple, Response, Section};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A policy exercising every fast-path feature at once: tables (nested),
/// CIDR and host endpoints, named and numeric ports, protocol constraints,
/// and the comparison / existence / membership / inclusion predicates over
/// literals, macros, dict values, and response keys — and every matcher-tree
/// dispatch dimension: exact dst-port table (`port http`, `port 53`,
/// `port 5353`), narrow-range expansion (`port 9000:9008`), wide-range
/// residual (`port 1000:2000`), dst-host and src-host maps (`to 192.168.1.1`,
/// `from 172.16.0.1`), addr groups (set and CIDR), proto buckets, and
/// response-literal tables (`eq(@src[name], …)`).
const POLICY: &str = "\
table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 10.0.0.0/8 }
table <internal> { <lan> <server> }
apps = \"{ skype firefox }\"
dict <meta> { owner : alice }
block all
pass proto tcp from <lan> to any port http with eq(@src[name], firefox) keep state
pass proto tcp from <internal> to <server> port 1000:2000 with member(@src[name], $apps)
pass all with eq(@src[name], skype) with gte(@src[version], 200)
pass all with exists(@src[user-initiated]) with includes(@dst[os-patch], MS08-067)
pass all with eq(@src[userID], @meta[owner]) with member(@src[groupID], admins)
block proto udp from any to any port 53 with ne(@src[name], resolver)
pass proto tcp from any to 192.168.1.1 port 8080
block from 172.16.0.1 to any
pass proto tcp from any to any port 9000:9008
block quick proto udp from any to any port 5353
";

fn response(flow: FiveTuple, pairs: &[(&str, &str)]) -> Response {
    let mut r = Response::new(flow);
    let mut s = Section::new();
    for (k, v) in pairs {
        s.push(*k, *v);
    }
    r.push_section(s);
    r
}

#[test]
fn steady_state_compiled_evaluation_does_not_allocate() {
    let ruleset = parse_ruleset(POLICY).unwrap();
    let compiled: CompiledPolicy = PolicyCompiler::new()
        .with_named_list("admins", vec!["admins".to_string(), "wheel".to_string()])
        .compile(&ruleset);

    let flows = [
        FiveTuple::tcp([192, 168, 0, 10], 40000, [8, 8, 8, 8], 80),
        FiveTuple::tcp([192, 168, 0, 10], 40001, [192, 168, 1, 1], 1500),
        FiveTuple::tcp([10, 1, 2, 3], 40002, [10, 4, 5, 6], 443),
        FiveTuple::udp([10, 1, 2, 3], 5353, [9, 9, 9, 9], 53),
        FiveTuple::tcp([172, 16, 0, 1], 1, [172, 16, 0, 2], 22),
        // Tree-dispatch paths: dst-host map + exact port, narrow-range
        // per-port expansion, and a quick rule inside the exact-port table.
        FiveTuple::tcp([8, 8, 4, 4], 40003, [192, 168, 1, 1], 8080),
        FiveTuple::tcp([8, 8, 4, 4], 40004, [8, 8, 8, 8], 9004),
        FiveTuple::udp([8, 8, 4, 4], 40005, [8, 8, 8, 8], 5353),
    ];
    let src = response(
        flows[0],
        &[
            ("name", "skype"),
            ("version", "210"),
            ("userID", "alice"),
            ("groupID", "wheel staff"),
            ("user-initiated", "true"),
        ],
    );
    let dst = response(
        flows[0],
        &[("os-patch", "MS08-001 MS08-067"), ("name", "skype")],
    );

    // Warm up (and sanity-check the decisions the loop will reproduce).
    let mut expected = Vec::new();
    for flow in &flows {
        let verdict = compiled.evaluate(flow, Some(&src), Some(&dst));
        expected.push(verdict.decision);
    }
    assert!(expected.contains(&Decision::Pass));
    assert!(expected.contains(&Decision::Block));

    // Measure bursts through the transport's shared retry policy and require
    // one to be allocation-free: a genuine per-evaluation allocation shows
    // up in *every* burst (50 000 evaluations each), while a process-level
    // one-time lazy init (stdio, unwinder, …) that happens to land inside
    // the first window cannot repeat. `RetryPolicy::immediate(3)` is
    // exactly the old hand-rolled three-burst loop — back-to-back attempts,
    // no backoff sleeps that could themselves allocate inside the window.
    let mut burst_allocs = Vec::new();
    RetryPolicy::immediate(3)
        .run_blocking(0, None, |_attempt| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let mut passes = 0u64;
            for _ in 0..10_000 {
                for (flow, want) in flows.iter().zip(&expected) {
                    let verdict = compiled.evaluate(flow, Some(&src), Some(&dst));
                    assert!(verdict.decision == *want);
                    if verdict.decision.is_pass() {
                        passes += 1;
                    }
                }
            }
            let after = ALLOCATIONS.load(Ordering::Relaxed);
            assert!(std::hint::black_box(passes) > 0);
            burst_allocs.push(after - before);
            if after == before {
                Ok(())
            } else {
                Err(after - before)
            }
        })
        .unwrap_or_else(|_| {
            panic!(
                "compiled evaluation allocated on the steady-state path in every burst: \
                 {burst_allocs:?}"
            )
        });
}
