//! End-to-end tests for the `pfcheck` binary: exit codes, text output, and
//! the JSON emitter, over seeded good and bad policies.

use std::path::PathBuf;
use std::process::{Command, Output};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pfcheck-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn pfcheck(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pfcheck"))
        .args(args)
        .output()
        .expect("pfcheck runs")
}

#[test]
fn clean_policy_exits_zero() {
    let dir = scratch_dir("clean");
    let file = dir.join("good.control");
    std::fs::write(
        &file,
        "table <server> { 192.168.1.1 }\n\
         block all\n\
         pass from any to <server> port 80 with eq(@src[name], firefox) keep state\n",
    )
    .unwrap();
    let out = pfcheck(&[file.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 error(s)"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn seeded_errors_exit_nonzero_and_name_categories() {
    let dir = scratch_dir("seeded");
    let file = dir.join("bad.control");
    std::fs::write(
        &file,
        "block from <missing_table> to any\n\
         pass from any to any with frob(@src[name])\n\
         pass from any to any with eq(@src[name], a) with eq(@src[name], b)\n\
         pass from 10.0.0.1 to any\n\
         pass from 10.0.0.0/24 to any\n",
    )
    .unwrap();
    let out = pfcheck(&[file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("undefined-reference"), "{text}");
    assert!(text.contains("unknown-function"), "{text}");
    assert!(text.contains("unsatisfiable"), "{text}");
    assert!(text.contains("shadowed-rule"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn granularity_flag_reports_unsafe_ports() {
    let dir = scratch_dir("granularity");
    let file = dir.join("ports.control");
    std::fs::write(&file, "block all\npass from any to any port 80\n").unwrap();

    let out = pfcheck(&["--granularity", "host-pair", file.to_str().unwrap()]);
    assert!(out.status.success(), "warnings only: {out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("granularity-unsafe"), "{text}");

    let out = pfcheck(&["--granularity", "exact", file.to_str().unwrap()]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(!text.contains("granularity-unsafe"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn directory_input_merges_and_attributes_files() {
    let dir = scratch_dir("dir");
    // The header defines the table the footer references; merged analysis
    // must resolve it (no undefined-reference error).
    std::fs::write(
        dir.join("00-header.control"),
        "table <server> { 10.0.0.1 }\nblock all\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("99-footer.control"),
        "pass from any to <server> port 22\n",
    )
    .unwrap();
    let out = pfcheck(&[dir.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 error(s)"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn json_output_is_structured() {
    let dir = scratch_dir("json");
    let file = dir.join("bad.control");
    std::fs::write(&file, "block from <nope> to any\n").unwrap();
    let out = pfcheck(&["--json", file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    let trimmed = text.trim();
    assert!(trimmed.starts_with('['), "{text}");
    assert!(trimmed.ends_with(']'), "{text}");
    assert!(
        text.contains("\"category\":\"undefined-reference\""),
        "{text}"
    );
    assert!(text.contains("\"severity\":\"error\""), "{text}");
    assert!(text.contains("\"line\":1"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn parse_failures_are_reported_as_errors() {
    let dir = scratch_dir("parse");
    let file = dir.join("broken.control");
    std::fs::write(&file, "pass from\n").unwrap();
    let out = pfcheck(&[file.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("parse-error"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn usage_errors_exit_two() {
    let out = pfcheck(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = pfcheck(&["--granularity", "bogus", "x.control"]);
    assert_eq!(out.status.code(), Some(2));
}
