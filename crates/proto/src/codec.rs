//! Text codec for the paper's wire format.
//!
//! §3.2 of the paper defines the body of query and response packets:
//!
//! ```text
//! <PROTO> <SRC PORT> <DST PORT>
//! <key 0>
//! <key 1>
//! ...
//! ```
//!
//! for a query, and
//!
//! ```text
//! <PROTO> <SRC PORT> <DST PORT>
//! <key 0>: <value 0>
//! <key 1>: <value 1>
//!
//! <key n>: <value n>
//! ...
//! ```
//!
//! for a response (sections separated by empty lines). The flow's IP
//! addresses are *not* part of the body: "The flow's source and destination IP
//! addresses can then be obtained from the query's IP header" — so the decode
//! functions take a [`FlowAddresses`] argument that the transport layer
//! recovered, and the [`crate::wire`] module provides an envelope that carries
//! them explicitly for transports (like TCP) where header spoofing is not
//! possible.
//!
//! Values may span multiple logical lines in configuration files (using `\`
//! continuations); on the wire embedded newlines are escaped as the two-byte
//! sequence `\n` so a value always occupies exactly one line.

use crate::error::ProtoError;
use crate::fivetuple::{FiveTuple, FlowAddresses, IpProtocol};
use crate::keys::Key;
use crate::query::Query;
use crate::response::{Response, Section};

/// Maximum accepted size of a single encoded message, in bytes.
///
/// Responses carry free-form text supplied by end-hosts which the controller
/// must treat as untrusted; a size cap bounds the memory a malicious daemon
/// can make the controller allocate.
pub const MAX_MESSAGE_SIZE: usize = 64 * 1024;

fn escape_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn unescape_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn encode_header(flow: &FiveTuple) -> String {
    format!(
        "{} {} {}",
        flow.protocol.keyword(),
        flow.src_port,
        flow.dst_port
    )
}

fn decode_header(line: &str, addrs: FlowAddresses) -> Result<FiveTuple, ProtoError> {
    let mut parts = line.split_whitespace();
    let proto = parts
        .next()
        .ok_or_else(|| ProtoError::BadHeader(line.to_string()))?
        .parse::<IpProtocol>()?;
    let src_port = parts
        .next()
        .ok_or_else(|| ProtoError::BadHeader(line.to_string()))?
        .parse::<u16>()
        .map_err(|_| ProtoError::BadPort(line.to_string()))?;
    let dst_port = parts
        .next()
        .ok_or_else(|| ProtoError::BadHeader(line.to_string()))?
        .parse::<u16>()
        .map_err(|_| ProtoError::BadPort(line.to_string()))?;
    if parts.next().is_some() {
        return Err(ProtoError::BadHeader(line.to_string()));
    }
    Ok(FiveTuple::new(
        addrs.src, src_port, addrs.dst, dst_port, proto,
    ))
}

/// Encodes a query body.
pub fn encode_query(query: &Query) -> String {
    let mut out = encode_header(&query.flow);
    out.push('\n');
    for key in query.keys() {
        out.push_str(key.as_str());
        out.push('\n');
    }
    out
}

/// Decodes a query body given the flow addresses recovered by the transport.
pub fn decode_query(text: &str, addrs: FlowAddresses) -> Result<Query, ProtoError> {
    check_size(text)?;
    let mut lines = text.lines();
    let header = lines.next().ok_or(ProtoError::Truncated)?;
    let flow = decode_header(header, addrs)?;
    let mut query = Query::new(flow);
    for line in lines {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        query.push_key(Key::new(line)?);
    }
    Ok(query)
}

/// Encodes a response body.
pub fn encode_response(response: &Response) -> String {
    let mut out = encode_header(&response.flow);
    out.push('\n');
    for (i, section) in response.sections().iter().enumerate() {
        if i > 0 {
            out.push('\n'); // blank line separates sections
        }
        for kv in section.pairs() {
            out.push_str(kv.key.as_str());
            out.push_str(": ");
            out.push_str(&escape_value(kv.value.as_str()));
            out.push('\n');
        }
    }
    out
}

/// Decodes a response body given the flow addresses recovered by the
/// transport.
pub fn decode_response(text: &str, addrs: FlowAddresses) -> Result<Response, ProtoError> {
    check_size(text)?;
    let mut lines = text.lines();
    let header = lines.next().ok_or(ProtoError::Truncated)?;
    let flow = decode_header(header, addrs)?;
    let mut response = Response::new(flow);
    let mut current = Section::new();
    for line in lines {
        let line = line.trim_end_matches(['\r']);
        if line.trim().is_empty() {
            // Section boundary.
            if !current.is_empty() {
                response.push_section(std::mem::take(&mut current));
            }
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| ProtoError::BadKeyValue(line.to_string()))?;
        let key = Key::new(key.trim())?;
        // The encoder writes exactly one space after the colon; strip only
        // that one so values with leading whitespace survive the round trip.
        let value = unescape_value(value.strip_prefix(' ').unwrap_or(value));
        current.push_pair(crate::keys::KeyValue {
            key,
            value: value.into(),
        });
    }
    if !current.is_empty() {
        response.push_section(current);
    }
    Ok(response)
}

fn check_size(text: &str) -> Result<(), ProtoError> {
    if text.len() > MAX_MESSAGE_SIZE {
        Err(ProtoError::TooLarge {
            size: text.len(),
            limit: MAX_MESSAGE_SIZE,
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::well_known;

    fn flow() -> FiveTuple {
        FiveTuple::tcp([192, 168, 0, 5], 40321, [192, 168, 1, 1], 445)
    }

    #[test]
    fn query_round_trip() {
        let q = Query::new(flow())
            .with_key(well_known::USER_ID)
            .with_key(well_known::APP_NAME)
            .with_key(well_known::OS_PATCH);
        let text = encode_query(&q);
        assert!(text.starts_with("tcp 40321 445\n"));
        let decoded = decode_query(&text, flow().addresses()).unwrap();
        assert_eq!(decoded, q);
    }

    #[test]
    fn empty_query_round_trip() {
        let q = Query::new(flow());
        let decoded = decode_query(&encode_query(&q), flow().addresses()).unwrap();
        assert_eq!(decoded, q);
    }

    #[test]
    fn response_round_trip_with_sections() {
        let mut r = Response::new(flow());
        let mut s1 = Section::new();
        s1.push(well_known::USER_ID, "system");
        s1.push(well_known::APP_NAME, "Server");
        s1.push(well_known::OS_PATCH, "MS08-067 MS09-001");
        r.push_section(s1);
        let mut s2 = Section::new();
        s2.push("audited-by", "controller-7");
        r.push_section(s2);

        let text = encode_response(&r);
        let decoded = decode_response(&text, flow().addresses()).unwrap();
        assert_eq!(decoded, r);
        assert_eq!(decoded.section_count(), 2);
    }

    #[test]
    fn response_values_with_newlines_round_trip() {
        // The `requirements` value in the paper's Fig. 4 is a multi-line PF
        // rule set; it must survive the wire intact.
        let requirements = "block all\npass all \\\n  with eq(@src[name], research-app)";
        let mut r = Response::new(flow());
        let mut s = Section::new();
        s.push(well_known::REQUIREMENTS, requirements);
        r.push_section(s);
        let text = encode_response(&r);
        // One header + one key-value line: newlines must be escaped.
        assert_eq!(text.lines().count(), 2);
        let decoded = decode_response(&text, flow().addresses()).unwrap();
        assert_eq!(decoded.latest(well_known::REQUIREMENTS), Some(requirements));
    }

    #[test]
    fn decode_rejects_bad_header() {
        assert!(decode_response("tcp 1\nname: x\n", flow().addresses()).is_err());
        assert!(decode_response("tcp one two\nname: x\n", flow().addresses()).is_err());
        assert!(decode_response("", flow().addresses()).is_err());
        assert!(decode_query("frob 1 2 3\n", flow().addresses()).is_err());
    }

    #[test]
    fn decode_rejects_missing_colon() {
        let r = decode_response("tcp 1 2\nnocolonhere\n", flow().addresses());
        assert!(matches!(r, Err(ProtoError::BadKeyValue(_))));
    }

    #[test]
    fn decode_rejects_oversized_message() {
        let mut big = String::from("tcp 1 2\n");
        while big.len() <= MAX_MESSAGE_SIZE {
            big.push_str("k: v\n");
        }
        assert!(matches!(
            decode_response(&big, flow().addresses()),
            Err(ProtoError::TooLarge { .. })
        ));
    }

    #[test]
    fn multiple_blank_lines_do_not_create_empty_sections() {
        let text = "tcp 1 2\na: 1\n\n\n\nb: 2\n";
        let r = decode_response(text, flow().addresses()).unwrap();
        assert_eq!(r.section_count(), 2);
    }

    #[test]
    fn value_escaping_round_trips_backslashes() {
        assert_eq!(unescape_value(&escape_value("a\\b\nc\rd")), "a\\b\nc\rd");
        assert_eq!(unescape_value("trailing\\"), "trailing\\");
        assert_eq!(unescape_value("\\q"), "\\q");
    }

    #[test]
    fn header_uses_flow_ports_and_protocol() {
        let f = FiveTuple::udp([1, 2, 3, 4], 53, [5, 6, 7, 8], 9999);
        let q = Query::new(f);
        assert!(encode_query(&q).starts_with("udp 53 9999"));
    }
}
