//! Error types for protocol parsing and framing.

use std::fmt;

/// Errors produced while parsing or framing ident++ protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// An IPv4 address string could not be parsed.
    BadAddress(String),
    /// An IP protocol keyword or number could not be parsed.
    BadProtocol(String),
    /// A port number could not be parsed.
    BadPort(String),
    /// The first line of a query/response (the `<PROTO> <SRC PORT> <DST PORT>`
    /// header) is malformed.
    BadHeader(String),
    /// A key-value line does not contain the `:` separator.
    BadKeyValue(String),
    /// A key contains characters that are not allowed on the wire.
    BadKey(String),
    /// The message was empty or truncated.
    Truncated,
    /// A wire envelope frame was malformed.
    BadFrame(String),
    /// The message exceeds the maximum size accepted by the codec.
    TooLarge { size: usize, limit: usize },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadAddress(s) => write!(f, "invalid IPv4 address: {s:?}"),
            ProtoError::BadProtocol(s) => write!(f, "invalid IP protocol: {s:?}"),
            ProtoError::BadPort(s) => write!(f, "invalid port number: {s:?}"),
            ProtoError::BadHeader(s) => write!(f, "malformed message header: {s:?}"),
            ProtoError::BadKeyValue(s) => write!(f, "malformed key-value line: {s:?}"),
            ProtoError::BadKey(s) => write!(f, "invalid key: {s:?}"),
            ProtoError::Truncated => write!(f, "message is empty or truncated"),
            ProtoError::BadFrame(s) => write!(f, "malformed wire frame: {s}"),
            ProtoError::TooLarge { size, limit } => {
                write!(f, "message of {size} bytes exceeds limit of {limit} bytes")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtoError::BadAddress("1.2.3".into());
        assert!(e.to_string().contains("1.2.3"));
        let e = ProtoError::TooLarge {
            size: 100,
            limit: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ProtoError>();
    }
}
