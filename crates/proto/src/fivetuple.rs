//! Flow identification: IPv4 addresses, IP protocols, and the 5-tuple.
//!
//! ident++ defines a flow as the 5-tuple `{IP source, IP destination,
//! IP protocol, transport source port, transport destination port}` (§2 of the
//! paper). OpenFlow's 10-tuple (see `identxx-openflow`) is a superset of this
//! definition.

use std::fmt;
use std::str::FromStr;

use crate::error::ProtoError;

/// An IPv4 address.
///
/// A small, `Copy`, dependency-free IPv4 address type. We deliberately do not
/// use `std::net::Ipv4Addr` everywhere so that the simulator can treat
/// addresses as plain `u32` values with cheap prefix arithmetic, but
/// conversions to and from the standard type are provided.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr(0);
    /// The limited broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4Addr = Ipv4Addr(u32::MAX);

    /// Builds an address from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four octets of the address.
    pub const fn octets(&self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Returns the raw 32-bit representation.
    pub const fn to_u32(&self) -> u32 {
        self.0
    }

    /// True if `self` falls inside `network/prefix_len`.
    ///
    /// A prefix length of 0 matches every address; 32 requires equality.
    pub fn in_prefix(&self, network: Ipv4Addr, prefix_len: u8) -> bool {
        if prefix_len == 0 {
            return true;
        }
        let prefix_len = prefix_len.min(32);
        let mask: u32 = if prefix_len == 32 {
            u32::MAX
        } else {
            !(u32::MAX >> prefix_len)
        };
        (self.0 & mask) == (network.0 & mask)
    }
}

impl From<[u8; 4]> for Ipv4Addr {
    fn from(o: [u8; 4]) -> Self {
        Ipv4Addr::new(o[0], o[1], o[2], o[3])
    }
}

impl From<u32> for Ipv4Addr {
    fn from(v: u32) -> Self {
        Ipv4Addr(v)
    }
}

impl From<std::net::Ipv4Addr> for Ipv4Addr {
    fn from(a: std::net::Ipv4Addr) -> Self {
        Ipv4Addr::from(a.octets())
    }
}

impl From<Ipv4Addr> for std::net::Ipv4Addr {
    fn from(a: Ipv4Addr) -> Self {
        let o = a.octets();
        std::net::Ipv4Addr::new(o[0], o[1], o[2], o[3])
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Ipv4Addr {
    type Err = ProtoError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for octet in octets.iter_mut() {
            let part = parts
                .next()
                .ok_or_else(|| ProtoError::BadAddress(s.to_string()))?;
            *octet = part
                .parse::<u8>()
                .map_err(|_| ProtoError::BadAddress(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(ProtoError::BadAddress(s.to_string()));
        }
        Ok(Ipv4Addr::from(octets))
    }
}

/// IP protocol numbers relevant to ident++.
///
/// The paper's flow definition only distinguishes TCP and UDP but the protocol
/// field is carried verbatim, so unknown protocol numbers are preserved in
/// [`IpProtocol::Other`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum IpProtocol {
    /// Internet Control Message Protocol (protocol number 1).
    Icmp,
    /// Transmission Control Protocol (protocol number 6).
    Tcp,
    /// User Datagram Protocol (protocol number 17).
    Udp,
    /// Any other protocol, identified by its IANA protocol number.
    Other(u8),
}

impl IpProtocol {
    /// The IANA protocol number.
    pub const fn number(&self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(n) => *n,
        }
    }

    /// Builds a protocol from its IANA number, canonicalizing the well-known
    /// values.
    pub const fn from_number(n: u8) -> Self {
        match n {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }

    /// The keyword used on the wire and in PF+=2 (`tcp`, `udp`, `icmp`, or the
    /// decimal protocol number).
    pub fn keyword(&self) -> String {
        match self {
            IpProtocol::Icmp => "icmp".to_string(),
            IpProtocol::Tcp => "tcp".to_string(),
            IpProtocol::Udp => "udp".to_string(),
            IpProtocol::Other(n) => n.to_string(),
        }
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.keyword())
    }
}

impl FromStr for IpProtocol {
    type Err = ProtoError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tcp" => Ok(IpProtocol::Tcp),
            "udp" => Ok(IpProtocol::Udp),
            "icmp" => Ok(IpProtocol::Icmp),
            other => other
                .parse::<u8>()
                .map(IpProtocol::from_number)
                .map_err(|_| ProtoError::BadProtocol(s.to_string())),
        }
    }
}

/// The source/destination address pair of a flow.
///
/// In the paper's transport the addresses are recovered from the IP header of
/// the query packet (the controller spoofs the flow's destination address as
/// the query source). When ident++ messages are carried over a real TCP
/// connection this information must be carried out of band, which is what this
/// type represents.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct FlowAddresses {
    /// The flow's source IPv4 address.
    pub src: Ipv4Addr,
    /// The flow's destination IPv4 address.
    pub dst: Ipv4Addr,
}

impl FlowAddresses {
    /// Creates a new address pair.
    pub fn new(src: impl Into<Ipv4Addr>, dst: impl Into<Ipv4Addr>) -> Self {
        FlowAddresses {
            src: src.into(),
            dst: dst.into(),
        }
    }

    /// Swaps source and destination (the reverse direction of the flow).
    pub fn reversed(&self) -> Self {
        FlowAddresses {
            src: self.dst,
            dst: self.src,
        }
    }
}

/// The ident++ 5-tuple flow identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// IP protocol.
    pub protocol: IpProtocol,
    /// Transport-layer source port (0 for protocols without ports).
    pub src_port: u16,
    /// Transport-layer destination port (0 for protocols without ports).
    pub dst_port: u16,
}

impl FiveTuple {
    /// Creates a new 5-tuple.
    pub fn new(
        src_ip: impl Into<Ipv4Addr>,
        src_port: u16,
        dst_ip: impl Into<Ipv4Addr>,
        dst_port: u16,
        protocol: IpProtocol,
    ) -> Self {
        FiveTuple {
            src_ip: src_ip.into(),
            dst_ip: dst_ip.into(),
            protocol,
            src_port,
            dst_port,
        }
    }

    /// Convenience constructor for a TCP flow.
    pub fn tcp(
        src_ip: impl Into<Ipv4Addr>,
        src_port: u16,
        dst_ip: impl Into<Ipv4Addr>,
        dst_port: u16,
    ) -> Self {
        FiveTuple::new(src_ip, src_port, dst_ip, dst_port, IpProtocol::Tcp)
    }

    /// Convenience constructor for a UDP flow.
    pub fn udp(
        src_ip: impl Into<Ipv4Addr>,
        src_port: u16,
        dst_ip: impl Into<Ipv4Addr>,
        dst_port: u16,
    ) -> Self {
        FiveTuple::new(src_ip, src_port, dst_ip, dst_port, IpProtocol::Udp)
    }

    /// The address pair of this flow.
    pub fn addresses(&self) -> FlowAddresses {
        FlowAddresses {
            src: self.src_ip,
            dst: self.dst_ip,
        }
    }

    /// The flow in the opposite direction (addresses and ports swapped).
    ///
    /// Stateful rules (`keep state` in PF+=2) admit reverse-direction traffic
    /// of an allowed flow, which is expressed in terms of this value.
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            protocol: self.protocol,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// A canonical (direction-independent) form of the flow, useful as a map
    /// key when both directions should share an entry.
    pub fn canonical(&self) -> FiveTuple {
        let fwd = (self.src_ip, self.src_port);
        let rev = (self.dst_ip, self.dst_port);
        if fwd <= rev {
            *self
        } else {
            self.reversed()
        }
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.protocol, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_octets_round_trip() {
        let a = Ipv4Addr::new(192, 168, 42, 32);
        assert_eq!(a.octets(), [192, 168, 42, 32]);
        assert_eq!(a.to_string(), "192.168.42.32");
        assert_eq!("192.168.42.32".parse::<Ipv4Addr>().unwrap(), a);
    }

    #[test]
    fn ipv4_parse_rejects_garbage() {
        assert!("192.168.1".parse::<Ipv4Addr>().is_err());
        assert!("192.168.1.1.1".parse::<Ipv4Addr>().is_err());
        assert!("300.1.1.1".parse::<Ipv4Addr>().is_err());
        assert!("a.b.c.d".parse::<Ipv4Addr>().is_err());
        assert!("".parse::<Ipv4Addr>().is_err());
    }

    #[test]
    fn prefix_membership() {
        let net = Ipv4Addr::new(192, 168, 0, 0);
        assert!(Ipv4Addr::new(192, 168, 0, 17).in_prefix(net, 24));
        assert!(Ipv4Addr::new(192, 168, 0, 255).in_prefix(net, 24));
        assert!(!Ipv4Addr::new(192, 168, 1, 17).in_prefix(net, 24));
        assert!(Ipv4Addr::new(192, 168, 1, 17).in_prefix(net, 16));
        assert!(Ipv4Addr::new(8, 8, 8, 8).in_prefix(net, 0));
        assert!(Ipv4Addr::new(192, 168, 0, 0).in_prefix(net, 32));
        assert!(!Ipv4Addr::new(192, 168, 0, 1).in_prefix(net, 32));
    }

    #[test]
    fn prefix_len_saturates_at_32() {
        let net = Ipv4Addr::new(10, 0, 0, 1);
        assert!(Ipv4Addr::new(10, 0, 0, 1).in_prefix(net, 200));
        assert!(!Ipv4Addr::new(10, 0, 0, 2).in_prefix(net, 200));
    }

    #[test]
    fn std_conversion_round_trips() {
        let ours = Ipv4Addr::new(10, 1, 2, 3);
        let std: std::net::Ipv4Addr = ours.into();
        assert_eq!(std.octets(), [10, 1, 2, 3]);
        assert_eq!(Ipv4Addr::from(std), ours);
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(IpProtocol::Tcp.number(), 6);
        assert_eq!(IpProtocol::Udp.number(), 17);
        assert_eq!(IpProtocol::Icmp.number(), 1);
        assert_eq!(IpProtocol::from_number(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from_number(47), IpProtocol::Other(47));
        assert_eq!(IpProtocol::Other(47).number(), 47);
    }

    #[test]
    fn protocol_parse() {
        assert_eq!("tcp".parse::<IpProtocol>().unwrap(), IpProtocol::Tcp);
        assert_eq!("TCP".parse::<IpProtocol>().unwrap(), IpProtocol::Tcp);
        assert_eq!("udp".parse::<IpProtocol>().unwrap(), IpProtocol::Udp);
        assert_eq!("47".parse::<IpProtocol>().unwrap(), IpProtocol::Other(47));
        assert!("sctp!".parse::<IpProtocol>().is_err());
    }

    #[test]
    fn five_tuple_reverse_is_involution() {
        let ft = FiveTuple::tcp([10, 0, 0, 1], 43211, [10, 0, 0, 2], 80);
        assert_eq!(ft.reversed().reversed(), ft);
        assert_ne!(ft.reversed(), ft);
        assert_eq!(ft.reversed().src_port, 80);
        assert_eq!(ft.reversed().dst_ip, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn five_tuple_canonical_is_direction_independent() {
        let ft = FiveTuple::tcp([10, 0, 0, 9], 5000, [10, 0, 0, 2], 80);
        assert_eq!(ft.canonical(), ft.reversed().canonical());
    }

    #[test]
    fn five_tuple_display() {
        let ft = FiveTuple::udp([192, 168, 1, 1], 53, [192, 168, 1, 2], 5353);
        assert_eq!(ft.to_string(), "udp 192.168.1.1:53 -> 192.168.1.2:5353");
    }
}
