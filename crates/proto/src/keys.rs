//! Keys and values carried in ident++ responses.
//!
//! ident++ does not constrain the key vocabulary: "These pairs are mostly
//! free-form and ident++ does not constrain the types that can be used" (§1).
//! The paper does name a number of keys it expects to be commonly used, and
//! those are collected in [`well_known`]. Administrators, users and
//! application developers may define their own.

use std::borrow::Borrow;
use std::fmt;

use crate::error::ProtoError;

/// Well-known key names used throughout the paper's examples.
pub mod well_known {
    /// The user ID of the user that initiated (source) or would receive
    /// (destination) the flow.
    pub const USER_ID: &str = "userID";
    /// The group ID(s) of that user.
    pub const GROUP_ID: &str = "groupID";
    /// The short application name (`name` in the `@app` configuration blocks).
    pub const APP_NAME: &str = "name";
    /// Alias used in some controller rules (`app-name`).
    pub const APP_NAME_ALT: &str = "app-name";
    /// Hash of the executable image backing the flow's process.
    pub const EXE_HASH: &str = "exe-hash";
    /// Application version.
    pub const VERSION: &str = "version";
    /// Application vendor.
    pub const VENDOR: &str = "vendor";
    /// Application type (e.g. `voip`, `email-client`).
    pub const APP_TYPE: &str = "type";
    /// PF+=2 rules the end-host/user/third party wants enforced on its behalf.
    pub const REQUIREMENTS: &str = "requirements";
    /// Signature over (exe-hash, app-name, requirements).
    pub const REQ_SIG: &str = "req-sig";
    /// The identity of the third party that authored the requirements.
    pub const RULE_MAKER: &str = "rule-maker";
    /// Operating-system patch level (e.g. `MS08-067`), used by the Conficker
    /// example (Fig. 8).
    pub const OS_PATCH: &str = "os-patch";
    /// Operating system name/version.
    pub const OS: &str = "os";
    /// The process ID associated with the flow on the answering host.
    pub const PID: &str = "pid";
    /// The full path of the executable image.
    pub const EXE_PATH: &str = "exe-path";
    /// Human-readable host name of the answering end-host.
    pub const HOSTNAME: &str = "hostname";
    /// Whether the flow was initiated by an explicit user action (e.g. a mouse
    /// click in a browser) — provided dynamically by applications.
    pub const USER_INITIATED: &str = "user-initiated";

    /// All well-known keys (useful for building "ask for everything" queries).
    pub const ALL: &[&str] = &[
        USER_ID,
        GROUP_ID,
        APP_NAME,
        APP_NAME_ALT,
        EXE_HASH,
        VERSION,
        VENDOR,
        APP_TYPE,
        REQUIREMENTS,
        REQ_SIG,
        RULE_MAKER,
        OS_PATCH,
        OS,
        PID,
        EXE_PATH,
        HOSTNAME,
        USER_INITIATED,
    ];
}

/// A key in an ident++ response.
///
/// Keys are free-form tokens. To keep the line-oriented wire format
/// unambiguous a key may not contain `:`/newline characters or leading or
/// trailing whitespace; [`Key::new`] enforces this.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(String);

impl Key {
    /// Creates a key, validating that it is representable on the wire.
    pub fn new(name: impl Into<String>) -> Result<Self, ProtoError> {
        let name = name.into();
        if !Self::is_valid(&name) {
            return Err(ProtoError::BadKey(name));
        }
        Ok(Key(name))
    }

    /// Creates a key without validation. Panics (in debug builds) if the key
    /// is not valid; intended for string literals.
    pub fn literal(name: &str) -> Self {
        debug_assert!(Self::is_valid(name), "invalid key literal: {name:?}");
        Key(name.to_string())
    }

    /// Whether `name` is a syntactically valid key.
    pub fn is_valid(name: &str) -> bool {
        !name.is_empty()
            && name.len() <= 256
            && !name.contains(':')
            && !name.contains('\n')
            && !name.contains('\r')
            && name.trim() == name
    }

    /// The key text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({})", self.0)
    }
}

impl Borrow<str> for Key {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Key {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::str::FromStr for Key {
    type Err = ProtoError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Key::new(s)
    }
}

impl PartialEq<str> for Key {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Key {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

/// A value in an ident++ response.
///
/// Values are free-form text. Newlines inside values are escaped on the wire
/// (the paper's examples use `\`-continuation for multi-line `requirements`
/// values; our codec folds continuations back into a single value).
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Value(String);

impl Value {
    /// Creates a value from text.
    pub fn new(text: impl Into<String>) -> Self {
        Value(text.into())
    }

    /// The value text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Attempts to interpret the value as a signed integer (used by the
    /// numeric comparison functions `gt`, `lt`, `gte`, `lte` in PF+=2).
    pub fn as_i64(&self) -> Option<i64> {
        self.0.trim().parse::<i64>().ok()
    }

    /// Whether the value is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value({})", self.0)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::new(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value(s)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value(v.to_string())
    }
}

impl AsRef<str> for Value {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

/// A single key-value pair.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct KeyValue {
    /// The key.
    pub key: Key,
    /// The value.
    pub value: Value,
}

impl KeyValue {
    /// Creates a pair from anything convertible to a key and value.
    pub fn new(key: impl AsRef<str>, value: impl Into<Value>) -> Result<Self, ProtoError> {
        Ok(KeyValue {
            key: Key::new(key.as_ref())?,
            value: value.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_keys() {
        assert!(Key::new("userID").is_ok());
        assert!(Key::new("exe-hash").is_ok());
        assert!(Key::new("os patch level").is_ok()); // inner spaces are fine
        assert!(Key::new("x").is_ok());
    }

    #[test]
    fn invalid_keys() {
        assert!(Key::new("").is_err());
        assert!(Key::new("a:b").is_err());
        assert!(Key::new("a\nb").is_err());
        assert!(Key::new(" padded").is_err());
        assert!(Key::new("padded ").is_err());
        assert!(Key::new("x".repeat(300)).is_err());
    }

    #[test]
    fn key_comparisons() {
        let k = Key::new("userID").unwrap();
        assert_eq!(k, "userID");
        assert_eq!(k.as_str(), "userID");
        assert_eq!(k.to_string(), "userID");
    }

    #[test]
    fn value_numeric_interpretation() {
        assert_eq!(Value::new("210").as_i64(), Some(210));
        assert_eq!(Value::new(" -3 ").as_i64(), Some(-3));
        assert_eq!(Value::new("2.1.0").as_i64(), None);
        assert_eq!(Value::new("skype").as_i64(), None);
        assert_eq!(Value::from(42).as_i64(), Some(42));
    }

    #[test]
    fn well_known_keys_are_valid() {
        for k in well_known::ALL {
            assert!(Key::is_valid(k), "well-known key {k} must be valid");
        }
    }

    #[test]
    fn key_value_constructor_validates() {
        assert!(KeyValue::new("name", "skype").is_ok());
        assert!(KeyValue::new("bad:key", "x").is_err());
    }
}
