//! # identxx-proto — the ident++ wire protocol
//!
//! This crate implements the query/response protocol described in §2 and §3.2
//! of *"Delegating Network Security with More Information"* (Naous et al.,
//! WREN'09). The protocol is a richer, more flexible descendant of the
//! Identification Protocol (RFC 1413):
//!
//! * A **query** carries a flow's 5-tuple and a list of *key hints* the
//!   controller is interested in.
//! * A **response** carries the same 5-tuple and a list of key-value pairs
//!   split into blank-line-delimited **sections**. Each section corresponds to
//!   a different information source (the user, the application, the local
//!   administrator, or an on-path controller that augmented the response).
//!
//! The crate provides:
//!
//! * [`FiveTuple`], [`IpProtocol`] — flow identification,
//! * [`Key`], [`Value`], [`well_known`] — the key-value vocabulary,
//! * [`Query`], [`Response`], [`Section`] — protocol messages,
//! * [`codec`] — text serialization / parsing of the paper's wire format,
//! * [`wire`] — a framed envelope used when the messages travel over a real
//!   TCP connection (where, unlike the paper's raw-IP transport, the flow
//!   addresses cannot be recovered from the IP header and must be carried
//!   explicitly).
//!
//! ## Batched rounds
//!
//! [`wire`] also defines the multi-query frames behind the controller's
//! batched query rounds: [`wire::WireMessage::QueryBatch`] carries several
//! queries for **one host** in a single frame, and
//! [`wire::WireMessage::ResponseBatch`] answers them *by flow* — the daemon
//! omits flows it knows nothing about, which the receiver treats exactly
//! like an unanswered singleton query. Batch elements are complete
//! singleton frames (one framing scheme to parse), and batches are bounded
//! by [`wire::MAX_BATCH`] elements / [`wire::MAX_BATCH_BODY`] bytes. See
//! `DESIGN.md` §6 for how the controller tier uses these.
//!
//! ## Example
//!
//! ```
//! use identxx_proto::{FiveTuple, Query, Response, Section, well_known};
//!
//! let flow = FiveTuple::tcp([10, 0, 0, 1], 43211, [10, 0, 0, 2], 80);
//! let query = Query::new(flow).with_key(well_known::USER_ID).with_key(well_known::APP_NAME);
//! assert_eq!(query.keys().len(), 2);
//!
//! let mut response = Response::new(flow);
//! let mut section = Section::new();
//! section.push(well_known::USER_ID, "alice");
//! section.push(well_known::APP_NAME, "firefox");
//! response.push_section(section);
//!
//! assert_eq!(response.latest(well_known::APP_NAME), Some("firefox"));
//! let text = identxx_proto::codec::encode_response(&response);
//! let parsed = identxx_proto::codec::decode_response(&text, flow.addresses()).unwrap();
//! assert_eq!(parsed, response);
//! ```

pub mod codec;
pub mod error;
pub mod fivetuple;
pub mod keys;
pub mod query;
pub mod response;
pub mod wire;

pub use error::ProtoError;
pub use fivetuple::{FiveTuple, FlowAddresses, IpProtocol, Ipv4Addr};
pub use keys::{well_known, Key, KeyValue, Value};
pub use query::Query;
pub use response::{Response, Section};
pub use wire::{WireMessage, IDENTXX_PORT};
