//! ident++ query messages.

use crate::fivetuple::FiveTuple;
use crate::keys::Key;

/// An ident++ query.
///
/// A query asks the ident++ daemon on an end-host (or an on-path controller
/// intercepting the query) for information about a flow. The flow is
/// identified by its 5-tuple; the listed keys are only a *hint* — "The list of
/// keys in the query packet only provide a hint for what the controller needs.
/// The response may contain additional unsolicited key-value pairs" (§3.2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// The flow this query is about.
    pub flow: FiveTuple,
    /// The keys the querier is interested in (a hint, possibly empty).
    keys: Vec<Key>,
}

impl Query {
    /// Creates a query about `flow` with no key hints.
    pub fn new(flow: FiveTuple) -> Self {
        Query {
            flow,
            keys: Vec::new(),
        }
    }

    /// Creates a query asking for every well-known key.
    pub fn for_all_well_known(flow: FiveTuple) -> Self {
        let mut q = Query::new(flow);
        for k in crate::keys::well_known::ALL {
            q.keys.push(Key::literal(k));
        }
        q
    }

    /// Adds a key hint (builder style). Invalid keys are silently skipped —
    /// hints are advisory and must never make a query unsendable.
    pub fn with_key(mut self, key: &str) -> Self {
        if let Ok(k) = Key::new(key) {
            self.keys.push(k);
        }
        self
    }

    /// Adds a key hint in place.
    pub fn push_key(&mut self, key: Key) {
        self.keys.push(key);
    }

    /// The key hints carried by this query.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// Whether a particular key was requested.
    pub fn requests(&self, key: &str) -> bool {
        self.keys.iter().any(|k| k.as_str() == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::well_known;

    fn flow() -> FiveTuple {
        FiveTuple::tcp([10, 0, 0, 1], 4000, [10, 0, 0, 2], 80)
    }

    #[test]
    fn builder_accumulates_keys() {
        let q = Query::new(flow())
            .with_key(well_known::USER_ID)
            .with_key(well_known::APP_NAME);
        assert_eq!(q.keys().len(), 2);
        assert!(q.requests(well_known::USER_ID));
        assert!(!q.requests(well_known::EXE_HASH));
    }

    #[test]
    fn invalid_hints_are_skipped() {
        let q = Query::new(flow()).with_key("bad:key").with_key("ok");
        assert_eq!(q.keys().len(), 1);
        assert!(q.requests("ok"));
    }

    #[test]
    fn all_well_known_query() {
        let q = Query::for_all_well_known(flow());
        assert_eq!(q.keys().len(), well_known::ALL.len());
        assert!(q.requests(well_known::REQ_SIG));
    }
}
