//! ident++ response messages: sections of key-value pairs.

use crate::fivetuple::FiveTuple;
use crate::keys::{Key, KeyValue, Value};

/// One section of an ident++ response.
///
/// "The list is broken up into sections delineated by empty lines. New
/// sections correspond to key-value pairs from different sources" (§3.2) — a
/// section may come from the user, the application, the local administrator,
/// or an on-path controller augmenting the response.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Section {
    pairs: Vec<KeyValue>,
}

impl Section {
    /// Creates an empty section.
    pub fn new() -> Self {
        Section::default()
    }

    /// Creates a section from an iterator of `(key, value)` string pairs,
    /// skipping pairs whose key is invalid.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        let mut s = Section::new();
        for (k, v) in pairs {
            s.push(k, v);
        }
        s
    }

    /// Appends a key-value pair. Invalid keys are skipped (a daemon must never
    /// fail to answer because one configuration entry is malformed) and the
    /// skip is indicated by the `bool` return.
    pub fn push(&mut self, key: impl AsRef<str>, value: impl Into<Value>) -> bool {
        match Key::new(key.as_ref()) {
            Ok(k) => {
                self.pairs.push(KeyValue {
                    key: k,
                    value: value.into(),
                });
                true
            }
            Err(_) => false,
        }
    }

    /// Appends an already-validated pair.
    pub fn push_pair(&mut self, pair: KeyValue) {
        self.pairs.push(pair);
    }

    /// The pairs in this section, in insertion order.
    pub fn pairs(&self) -> &[KeyValue] {
        &self.pairs
    }

    /// The last value recorded for `key` in this section, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.pairs
            .iter()
            .rev()
            .find(|kv| kv.key.as_str() == key)
            .map(|kv| &kv.value)
    }

    /// Whether the section carries no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of pairs in the section.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }
}

/// An ident++ response: the flow's 5-tuple plus a list of sections.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Response {
    /// The flow this response describes.
    pub flow: FiveTuple,
    sections: Vec<Section>,
}

impl Response {
    /// Creates a response with no sections.
    pub fn new(flow: FiveTuple) -> Self {
        Response {
            flow,
            sections: Vec::new(),
        }
    }

    /// Appends a section. Empty sections are dropped (they would be invisible
    /// on the wire anyway, since sections are blank-line delimited).
    pub fn push_section(&mut self, section: Section) {
        if !section.is_empty() {
            self.sections.push(section);
        }
    }

    /// Builder-style [`Response::push_section`].
    pub fn with_section(mut self, section: Section) -> Self {
        self.push_section(section);
        self
    }

    /// The sections of the response, oldest (originating end-host) first.
    ///
    /// Controllers augmenting a response append sections at the end, so later
    /// sections are "closer" to the querier and considered more trusted.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// The **latest** value for `key` across all sections.
    ///
    /// "indexing the dictionaries will give the latest value added to the
    /// response. The latest value is the most trusted (though not necessarily
    /// the most trustworthy) because a controller can overwrite or modify any
    /// responses that it sees" (§3.3). This is the semantics of `@src[key]` /
    /// `@dst[key]` in PF+=2.
    pub fn latest(&self, key: &str) -> Option<&str> {
        self.sections
            .iter()
            .rev()
            .find_map(|s| s.get(key))
            .map(Value::as_str)
    }

    /// Every value recorded for `key`, in section order (oldest first).
    pub fn all(&self, key: &str) -> Vec<&str> {
        self.sections
            .iter()
            .flat_map(|s| s.pairs())
            .filter(|kv| kv.key.as_str() == key)
            .map(|kv| kv.value.as_str())
            .collect()
    }

    /// The concatenation of every value for `key` across all sections,
    /// separated by a single space.
    ///
    /// This is the semantics of `*@src[key]` in PF+=2: "returns a
    /// concatenation of the values in all sections of the response packet. The
    /// concatenated value can be used to check if a series of endorsements
    /// (such as a network path) was followed or if a value changed between
    /// networks" (§3.3).
    pub fn concatenated(&self, key: &str) -> Option<String> {
        let all = self.all(key);
        if all.is_empty() {
            None
        } else {
            Some(all.join(" "))
        }
    }

    /// All keys present anywhere in the response (deduplicated, first-seen
    /// order).
    pub fn keys(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for s in &self.sections {
            for kv in s.pairs() {
                if !seen.contains(&kv.key.as_str()) {
                    seen.push(kv.key.as_str());
                }
            }
        }
        seen
    }

    /// Number of sections.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Whether the response carries no information at all.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Total number of key-value pairs across all sections.
    pub fn pair_count(&self) -> usize {
        self.sections.iter().map(Section::len).sum()
    }

    /// Augments the response in place, as an on-path controller does: "the
    /// controller inserts an empty line followed by the key-value pairs it
    /// wishes to add" (§3.4). This is simply an appended section.
    pub fn augment(&mut self, section: Section) {
        self.push_section(section);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::well_known;

    fn flow() -> FiveTuple {
        FiveTuple::tcp([10, 0, 0, 1], 4000, [10, 0, 0, 2], 80)
    }

    fn sample() -> Response {
        let mut r = Response::new(flow());
        let mut s1 = Section::new();
        s1.push(well_known::USER_ID, "alice");
        s1.push(well_known::APP_NAME, "skype");
        s1.push(well_known::VERSION, "210");
        r.push_section(s1);
        let mut s2 = Section::new();
        s2.push(well_known::USER_ID, "branch-gw");
        s2.push("site", "barcelona");
        r.push_section(s2);
        r
    }

    #[test]
    fn latest_prefers_last_section() {
        let r = sample();
        assert_eq!(r.latest(well_known::USER_ID), Some("branch-gw"));
        assert_eq!(r.latest(well_known::APP_NAME), Some("skype"));
        assert_eq!(r.latest("missing"), None);
    }

    #[test]
    fn latest_prefers_last_pair_within_section() {
        let mut r = Response::new(flow());
        let mut s = Section::new();
        s.push("k", "first");
        s.push("k", "second");
        r.push_section(s);
        assert_eq!(r.latest("k"), Some("second"));
    }

    #[test]
    fn concatenated_joins_all_sections() {
        let r = sample();
        assert_eq!(
            r.concatenated(well_known::USER_ID).as_deref(),
            Some("alice branch-gw")
        );
        assert_eq!(r.concatenated("missing"), None);
        assert_eq!(r.concatenated("site").as_deref(), Some("barcelona"));
    }

    #[test]
    fn empty_sections_are_dropped() {
        let mut r = Response::new(flow());
        r.push_section(Section::new());
        assert!(r.is_empty());
        assert_eq!(r.section_count(), 0);
    }

    #[test]
    fn augmentation_appends_section() {
        let mut r = sample();
        let before = r.section_count();
        let mut extra = Section::new();
        extra.push("branch-accepts", "tcp 80 443");
        r.augment(extra);
        assert_eq!(r.section_count(), before + 1);
        assert_eq!(r.latest("branch-accepts"), Some("tcp 80 443"));
    }

    #[test]
    fn keys_are_deduplicated_in_order() {
        let r = sample();
        let keys = r.keys();
        assert_eq!(
            keys,
            vec![
                well_known::USER_ID,
                well_known::APP_NAME,
                well_known::VERSION,
                "site"
            ]
        );
    }

    #[test]
    fn invalid_keys_are_skipped_by_push() {
        let mut s = Section::new();
        assert!(!s.push("bad:key", "x"));
        assert!(s.push("good", "x"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn pair_count_sums_sections() {
        assert_eq!(sample().pair_count(), 5);
    }
}
