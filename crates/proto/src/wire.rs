//! Framed wire envelope for carrying ident++ messages over byte streams.
//!
//! The paper transports queries and responses as raw IP packets whose headers
//! carry the flow addresses (the querying controller even spoofs the flow's
//! destination address as the query source, §3.2). When the protocol runs
//! over an ordinary TCP connection — as the reference `identd`-style daemon on
//! port 783 does — the flow addresses must be carried explicitly. This module
//! defines that envelope:
//!
//! ```text
//! IDENT++/1 <QUERY|RESPONSE> <flow-src-ip> <flow-dst-ip> <body-length>\n
//! <body bytes...>
//! ```
//!
//! The body is exactly the paper's text format as produced by [`crate::codec`].

use crate::codec;
use crate::error::ProtoError;
use crate::fivetuple::{FlowAddresses, Ipv4Addr};
use crate::query::Query;
use crate::response::Response;

/// The TCP port the ident++ daemon listens on (§2: "end-hosts run an ident++
/// daemon as a server that receives queries on TCP port 783").
pub const IDENTXX_PORT: u16 = 783;

/// Protocol magic / version token at the start of every frame.
pub const MAGIC: &str = "IDENT++/1";

/// A framed ident++ message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireMessage {
    /// A query from a controller to an end-host (or intercepting controller).
    Query(Query),
    /// A response from an end-host or on-path controller.
    Response(Response),
}

impl WireMessage {
    /// The flow addresses carried in the envelope.
    pub fn addresses(&self) -> FlowAddresses {
        match self {
            WireMessage::Query(q) => q.flow.addresses(),
            WireMessage::Response(r) => r.flow.addresses(),
        }
    }

    /// Encodes the message into a self-delimiting frame.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, body, addrs) = match self {
            WireMessage::Query(q) => ("QUERY", codec::encode_query(q), q.flow.addresses()),
            WireMessage::Response(r) => ("RESPONSE", codec::encode_response(r), r.flow.addresses()),
        };
        let header = format!(
            "{MAGIC} {kind} {} {} {}\n",
            addrs.src,
            addrs.dst,
            body.len()
        );
        let mut out = Vec::with_capacity(header.len() + body.len());
        out.extend_from_slice(header.as_bytes());
        out.extend_from_slice(body.as_bytes());
        out
    }

    /// Attempts to decode one frame from the start of `buf`.
    ///
    /// Returns `Ok(None)` if the buffer does not yet contain a complete frame
    /// (the caller should read more bytes), or `Ok(Some((message, consumed)))`
    /// with the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<Option<(WireMessage, usize)>, ProtoError> {
        let newline = match buf.iter().position(|&b| b == b'\n') {
            Some(p) => p,
            None => {
                // Guard against a header that never terminates.
                if buf.len() > 512 {
                    return Err(ProtoError::BadFrame("unterminated frame header".into()));
                }
                return Ok(None);
            }
        };
        let header = std::str::from_utf8(&buf[..newline])
            .map_err(|_| ProtoError::BadFrame("header is not UTF-8".into()))?;
        let mut parts = header.split_whitespace();
        let magic = parts.next().unwrap_or_default();
        if magic != MAGIC {
            return Err(ProtoError::BadFrame(format!("bad magic {magic:?}")));
        }
        let kind = parts
            .next()
            .ok_or_else(|| ProtoError::BadFrame("missing message kind".into()))?;
        let src: Ipv4Addr = parts
            .next()
            .ok_or_else(|| ProtoError::BadFrame("missing source address".into()))?
            .parse()?;
        let dst: Ipv4Addr = parts
            .next()
            .ok_or_else(|| ProtoError::BadFrame("missing destination address".into()))?
            .parse()?;
        let len: usize = parts
            .next()
            .ok_or_else(|| ProtoError::BadFrame("missing body length".into()))?
            .parse()
            .map_err(|_| ProtoError::BadFrame("bad body length".into()))?;
        if parts.next().is_some() {
            return Err(ProtoError::BadFrame("trailing tokens in header".into()));
        }
        if len > codec::MAX_MESSAGE_SIZE {
            return Err(ProtoError::TooLarge {
                size: len,
                limit: codec::MAX_MESSAGE_SIZE,
            });
        }
        let body_start = newline + 1;
        if buf.len() < body_start + len {
            return Ok(None);
        }
        let body = std::str::from_utf8(&buf[body_start..body_start + len])
            .map_err(|_| ProtoError::BadFrame("body is not UTF-8".into()))?;
        let addrs = FlowAddresses { src, dst };
        let msg = match kind {
            "QUERY" => WireMessage::Query(codec::decode_query(body, addrs)?),
            "RESPONSE" => WireMessage::Response(codec::decode_response(body, addrs)?),
            other => return Err(ProtoError::BadFrame(format!("unknown kind {other:?}"))),
        };
        Ok(Some((msg, body_start + len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fivetuple::FiveTuple;
    use crate::keys::well_known;
    use crate::response::Section;

    fn flow() -> FiveTuple {
        FiveTuple::tcp([10, 9, 8, 7], 50000, [10, 1, 1, 1], 25)
    }

    fn sample_response() -> Response {
        let mut r = Response::new(flow());
        let mut s = Section::new();
        s.push(well_known::USER_ID, "alice");
        s.push(well_known::APP_NAME, "thunderbird");
        r.push_section(s);
        r
    }

    #[test]
    fn query_frame_round_trip() {
        let msg = WireMessage::Query(Query::new(flow()).with_key(well_known::USER_ID));
        let bytes = msg.encode();
        let (decoded, used) = WireMessage::decode(&bytes).unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn response_frame_round_trip() {
        let msg = WireMessage::Response(sample_response());
        let bytes = msg.encode();
        let (decoded, used) = WireMessage::decode(&bytes).unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn partial_frames_ask_for_more_data() {
        let msg = WireMessage::Response(sample_response());
        let bytes = msg.encode();
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(WireMessage::decode(&bytes[..cut]).unwrap(), None);
        }
    }

    #[test]
    fn back_to_back_frames_decode_sequentially() {
        let q = WireMessage::Query(Query::new(flow()));
        let r = WireMessage::Response(sample_response());
        let mut bytes = q.encode();
        bytes.extend_from_slice(&r.encode());
        let (first, used) = WireMessage::decode(&bytes).unwrap().unwrap();
        assert_eq!(first, q);
        let (second, used2) = WireMessage::decode(&bytes[used..]).unwrap().unwrap();
        assert_eq!(second, r);
        assert_eq!(used + used2, bytes.len());
    }

    #[test]
    fn rejects_bad_magic_and_kind() {
        assert!(WireMessage::decode(b"NOPE QUERY 1.1.1.1 2.2.2.2 0\n").is_err());
        assert!(WireMessage::decode(b"IDENT++/1 FROB 1.1.1.1 2.2.2.2 0\n").is_err());
        assert!(WireMessage::decode(b"IDENT++/1 QUERY 1.1.1.1 2.2.2.2 huge\n").is_err());
    }

    #[test]
    fn rejects_oversized_declared_length() {
        let hdr = format!("IDENT++/1 QUERY 1.1.1.1 2.2.2.2 {}\n", usize::MAX / 2);
        assert!(matches!(
            WireMessage::decode(hdr.as_bytes()),
            Err(ProtoError::TooLarge { .. })
        ));
    }

    #[test]
    fn rejects_unterminated_header_eventually() {
        let junk = vec![b'x'; 1024];
        assert!(WireMessage::decode(&junk).is_err());
        // A short prefix without newline is just "need more data".
        assert_eq!(WireMessage::decode(&junk[..100]).unwrap(), None);
    }

    #[test]
    fn addresses_come_from_envelope() {
        let msg = WireMessage::Query(Query::new(flow()));
        assert_eq!(msg.addresses(), flow().addresses());
    }
}
