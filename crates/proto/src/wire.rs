//! Framed wire envelope for carrying ident++ messages over byte streams.
//!
//! The paper transports queries and responses as raw IP packets whose headers
//! carry the flow addresses (the querying controller even spoofs the flow's
//! destination address as the query source, §3.2). When the protocol runs
//! over an ordinary TCP connection — as the reference `identd`-style daemon on
//! port 783 does — the flow addresses must be carried explicitly. This module
//! defines that envelope:
//!
//! ```text
//! IDENT++/1 <QUERY|RESPONSE> <flow-src-ip> <flow-dst-ip> <body-length>\n
//! <body bytes...>
//! ```
//!
//! The body is exactly the paper's text format as produced by [`crate::codec`].
//!
//! ## Batched rounds
//!
//! A controller deciding a batch of flows coalesces every query bound for the
//! same host into **one** frame, so a query round costs one round trip per
//! host instead of one per flow (and, controller-side, one connection instead
//! of one thread per flow end). The batch envelope prefixes a count where the
//! singleton envelope carries flow addresses — each element is a complete
//! singleton frame, so the body needs no second framing scheme:
//!
//! ```text
//! IDENT++/1 <QUERY-BATCH|RESPONSE-BATCH> <count> <body-length>\n
//! <count back-to-back singleton frames...>
//! ```
//!
//! A response batch answers a query batch *by flow*, not by position: the
//! daemon includes one `RESPONSE` frame per flow it has information about and
//! simply omits the flows it does not (the receiver treats an omitted flow
//! exactly like a singleton query that produced no answer). Batches are
//! bounded by [`MAX_BATCH`] elements and [`MAX_BATCH_BODY`] body bytes;
//! violating either is a protocol error, like an oversized singleton body.

use crate::codec;
use crate::error::ProtoError;
use crate::fivetuple::{FlowAddresses, Ipv4Addr};
use crate::query::Query;
use crate::response::Response;

/// The TCP port the ident++ daemon listens on (§2: "end-hosts run an ident++
/// daemon as a server that receives queries on TCP port 783").
pub const IDENTXX_PORT: u16 = 783;

/// Protocol magic / version token at the start of every frame.
pub const MAGIC: &str = "IDENT++/1";

/// Maximum number of elements in one batch frame. A controller batching
/// harder than this splits the round into several frames.
pub const MAX_BATCH: usize = 64;

/// Maximum total body length of one batch frame, sized so that **any**
/// batch of [`MAX_BATCH`] individually legal elements (each bounded by
/// [`codec::MAX_MESSAGE_SIZE`] plus its singleton header) encodes into a
/// legal batch — a daemon answering a full batch with maximum-size
/// responses must never produce a frame the querier has to reject. The
/// bound still caps what a peer can make the receiver buffer for one
/// declared frame.
pub const MAX_BATCH_BODY: usize = MAX_BATCH * (codec::MAX_MESSAGE_SIZE + 512);

/// A framed ident++ message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireMessage {
    /// A query from a controller to an end-host (or intercepting controller).
    Query(Query),
    /// A response from an end-host or on-path controller.
    Response(Response),
    /// Several queries for one host, resolved in a single round trip. Every
    /// query in the batch is directed at the same daemon; the flows may (and
    /// typically do) differ.
    QueryBatch(Vec<Query>),
    /// The answers to a [`WireMessage::QueryBatch`], matched by flow. Flows
    /// the daemon has no information about are simply absent.
    ResponseBatch(Vec<Response>),
}

impl WireMessage {
    /// The flow addresses carried in the envelope. Batch envelopes carry a
    /// count instead of addresses; for them this returns the first element's
    /// addresses (batches address a host, not a flow), or the zero address
    /// pair for an empty batch.
    pub fn addresses(&self) -> FlowAddresses {
        let zero = FlowAddresses {
            src: Ipv4Addr::new(0, 0, 0, 0),
            dst: Ipv4Addr::new(0, 0, 0, 0),
        };
        match self {
            WireMessage::Query(q) => q.flow.addresses(),
            WireMessage::Response(r) => r.flow.addresses(),
            WireMessage::QueryBatch(qs) => qs.first().map_or(zero, |q| q.flow.addresses()),
            WireMessage::ResponseBatch(rs) => rs.first().map_or(zero, |r| r.flow.addresses()),
        }
    }

    /// Encodes the message into a self-delimiting frame.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, body, addrs) = match self {
            WireMessage::Query(q) => ("QUERY", codec::encode_query(q), q.flow.addresses()),
            WireMessage::Response(r) => ("RESPONSE", codec::encode_response(r), r.flow.addresses()),
            WireMessage::QueryBatch(qs) => {
                return Self::encode_batch(
                    "QUERY-BATCH",
                    qs.len(),
                    qs.iter().map(|q| WireMessage::Query(q.clone()).encode()),
                );
            }
            WireMessage::ResponseBatch(rs) => {
                return Self::encode_batch(
                    "RESPONSE-BATCH",
                    rs.len(),
                    rs.iter().map(|r| WireMessage::Response(r.clone()).encode()),
                );
            }
        };
        let header = format!(
            "{MAGIC} {kind} {} {} {}\n",
            addrs.src,
            addrs.dst,
            body.len()
        );
        let mut out = Vec::with_capacity(header.len() + body.len());
        out.extend_from_slice(header.as_bytes());
        out.extend_from_slice(body.as_bytes());
        out
    }

    fn encode_batch(kind: &str, count: usize, frames: impl Iterator<Item = Vec<u8>>) -> Vec<u8> {
        let mut body = Vec::new();
        for frame in frames {
            body.extend_from_slice(&frame);
        }
        let header = format!("{MAGIC} {kind} {count} {}\n", body.len());
        let mut out = Vec::with_capacity(header.len() + body.len());
        out.extend_from_slice(header.as_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Attempts to decode one frame from the start of `buf`.
    ///
    /// Returns `Ok(None)` if the buffer does not yet contain a complete frame
    /// (the caller should read more bytes), or `Ok(Some((message, consumed)))`
    /// with the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<Option<(WireMessage, usize)>, ProtoError> {
        Self::decode_frame(buf, true)
    }

    /// [`WireMessage::decode`] with an explicit batch permission: batch
    /// *elements* are decoded with `allow_batch = false`, so a hostile peer
    /// nesting batch headers inside batch bodies is rejected at the inner
    /// header — recursion depth is bounded at two regardless of input.
    fn decode_frame(
        buf: &[u8],
        allow_batch: bool,
    ) -> Result<Option<(WireMessage, usize)>, ProtoError> {
        let newline = match buf.iter().position(|&b| b == b'\n') {
            Some(p) => p,
            None => {
                // Guard against a header that never terminates.
                if buf.len() > 512 {
                    return Err(ProtoError::BadFrame("unterminated frame header".into()));
                }
                return Ok(None);
            }
        };
        let header = std::str::from_utf8(&buf[..newline])
            .map_err(|_| ProtoError::BadFrame("header is not UTF-8".into()))?;
        let mut parts = header.split_whitespace();
        let magic = parts.next().unwrap_or_default();
        if magic != MAGIC {
            return Err(ProtoError::BadFrame(format!("bad magic {magic:?}")));
        }
        let kind = parts
            .next()
            .ok_or_else(|| ProtoError::BadFrame("missing message kind".into()))?;
        if matches!(kind, "QUERY-BATCH" | "RESPONSE-BATCH") {
            if !allow_batch {
                return Err(ProtoError::BadFrame(
                    "batch frames cannot nest inside batch bodies".into(),
                ));
            }
            return Self::decode_batch(kind, parts, buf, newline);
        }
        let src: Ipv4Addr = parts
            .next()
            .ok_or_else(|| ProtoError::BadFrame("missing source address".into()))?
            .parse()?;
        let dst: Ipv4Addr = parts
            .next()
            .ok_or_else(|| ProtoError::BadFrame("missing destination address".into()))?
            .parse()?;
        let len: usize = parts
            .next()
            .ok_or_else(|| ProtoError::BadFrame("missing body length".into()))?
            .parse()
            .map_err(|_| ProtoError::BadFrame("bad body length".into()))?;
        if parts.next().is_some() {
            return Err(ProtoError::BadFrame("trailing tokens in header".into()));
        }
        if len > codec::MAX_MESSAGE_SIZE {
            return Err(ProtoError::TooLarge {
                size: len,
                limit: codec::MAX_MESSAGE_SIZE,
            });
        }
        let body_start = newline + 1;
        if buf.len() < body_start + len {
            return Ok(None);
        }
        let body = std::str::from_utf8(&buf[body_start..body_start + len])
            .map_err(|_| ProtoError::BadFrame("body is not UTF-8".into()))?;
        let addrs = FlowAddresses { src, dst };
        let msg = match kind {
            "QUERY" => WireMessage::Query(codec::decode_query(body, addrs)?),
            "RESPONSE" => WireMessage::Response(codec::decode_response(body, addrs)?),
            other => return Err(ProtoError::BadFrame(format!("unknown kind {other:?}"))),
        };
        Ok(Some((msg, body_start + len)))
    }

    /// Decodes the tail of a batch frame: `<count> <body-length>\n` followed
    /// by exactly `count` back-to-back singleton frames of the matching kind.
    fn decode_batch<'a>(
        kind: &str,
        mut parts: impl Iterator<Item = &'a str>,
        buf: &[u8],
        newline: usize,
    ) -> Result<Option<(WireMessage, usize)>, ProtoError> {
        let count: usize = parts
            .next()
            .ok_or_else(|| ProtoError::BadFrame("missing batch count".into()))?
            .parse()
            .map_err(|_| ProtoError::BadFrame("bad batch count".into()))?;
        let len: usize = parts
            .next()
            .ok_or_else(|| ProtoError::BadFrame("missing body length".into()))?
            .parse()
            .map_err(|_| ProtoError::BadFrame("bad body length".into()))?;
        if parts.next().is_some() {
            return Err(ProtoError::BadFrame("trailing tokens in header".into()));
        }
        if count > MAX_BATCH {
            return Err(ProtoError::BadFrame(format!(
                "batch of {count} exceeds the {MAX_BATCH}-element limit"
            )));
        }
        if len > MAX_BATCH_BODY {
            return Err(ProtoError::TooLarge {
                size: len,
                limit: MAX_BATCH_BODY,
            });
        }
        let body_start = newline + 1;
        if buf.len() < body_start + len {
            return Ok(None);
        }
        let body = &buf[body_start..body_start + len];
        let mut queries = Vec::new();
        let mut responses = Vec::new();
        let mut at = 0;
        for _ in 0..count {
            // The body is complete, so a partial element frame is corruption,
            // not a need for more bytes. Elements must be singleton frames
            // (`allow_batch = false`): nesting is a protocol violation.
            let (element, used) = Self::decode_frame(&body[at..], false)?
                .ok_or_else(|| ProtoError::BadFrame("batch body ends mid-element".into()))?;
            at += used;
            match (kind, element) {
                ("QUERY-BATCH", WireMessage::Query(q)) => queries.push(q),
                ("RESPONSE-BATCH", WireMessage::Response(r)) => responses.push(r),
                _ => {
                    return Err(ProtoError::BadFrame(
                        "batch element kind does not match the envelope".into(),
                    ))
                }
            }
        }
        if at != len {
            return Err(ProtoError::BadFrame(
                "batch body longer than its declared elements".into(),
            ));
        }
        let msg = if kind == "QUERY-BATCH" {
            WireMessage::QueryBatch(queries)
        } else {
            WireMessage::ResponseBatch(responses)
        };
        Ok(Some((msg, body_start + len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fivetuple::FiveTuple;
    use crate::keys::well_known;
    use crate::response::Section;

    fn flow() -> FiveTuple {
        FiveTuple::tcp([10, 9, 8, 7], 50000, [10, 1, 1, 1], 25)
    }

    fn sample_response() -> Response {
        let mut r = Response::new(flow());
        let mut s = Section::new();
        s.push(well_known::USER_ID, "alice");
        s.push(well_known::APP_NAME, "thunderbird");
        r.push_section(s);
        r
    }

    #[test]
    fn query_frame_round_trip() {
        let msg = WireMessage::Query(Query::new(flow()).with_key(well_known::USER_ID));
        let bytes = msg.encode();
        let (decoded, used) = WireMessage::decode(&bytes).unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn response_frame_round_trip() {
        let msg = WireMessage::Response(sample_response());
        let bytes = msg.encode();
        let (decoded, used) = WireMessage::decode(&bytes).unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn partial_frames_ask_for_more_data() {
        let msg = WireMessage::Response(sample_response());
        let bytes = msg.encode();
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(WireMessage::decode(&bytes[..cut]).unwrap(), None);
        }
    }

    #[test]
    fn back_to_back_frames_decode_sequentially() {
        let q = WireMessage::Query(Query::new(flow()));
        let r = WireMessage::Response(sample_response());
        let mut bytes = q.encode();
        bytes.extend_from_slice(&r.encode());
        let (first, used) = WireMessage::decode(&bytes).unwrap().unwrap();
        assert_eq!(first, q);
        let (second, used2) = WireMessage::decode(&bytes[used..]).unwrap().unwrap();
        assert_eq!(second, r);
        assert_eq!(used + used2, bytes.len());
    }

    #[test]
    fn rejects_bad_magic_and_kind() {
        assert!(WireMessage::decode(b"NOPE QUERY 1.1.1.1 2.2.2.2 0\n").is_err());
        assert!(WireMessage::decode(b"IDENT++/1 FROB 1.1.1.1 2.2.2.2 0\n").is_err());
        assert!(WireMessage::decode(b"IDENT++/1 QUERY 1.1.1.1 2.2.2.2 huge\n").is_err());
    }

    #[test]
    fn rejects_oversized_declared_length() {
        let hdr = format!("IDENT++/1 QUERY 1.1.1.1 2.2.2.2 {}\n", usize::MAX / 2);
        assert!(matches!(
            WireMessage::decode(hdr.as_bytes()),
            Err(ProtoError::TooLarge { .. })
        ));
    }

    #[test]
    fn rejects_unterminated_header_eventually() {
        let junk = vec![b'x'; 1024];
        assert!(WireMessage::decode(&junk).is_err());
        // A short prefix without newline is just "need more data".
        assert_eq!(WireMessage::decode(&junk[..100]).unwrap(), None);
    }

    #[test]
    fn addresses_come_from_envelope() {
        let msg = WireMessage::Query(Query::new(flow()));
        assert_eq!(msg.addresses(), flow().addresses());
    }

    fn other_flow(i: u8) -> FiveTuple {
        FiveTuple::tcp([10, 9, 8, i], 40000 + i as u16, [10, 1, 1, 1], 80)
    }

    #[test]
    fn query_batch_round_trip() {
        let msg = WireMessage::QueryBatch(vec![
            Query::new(flow()).with_key(well_known::USER_ID),
            Query::new(other_flow(1)),
            Query::new(other_flow(2)).with_key(well_known::APP_NAME),
        ]);
        let bytes = msg.encode();
        let (decoded, used) = WireMessage::decode(&bytes).unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn response_batch_round_trip_and_empty_batch() {
        let msg = WireMessage::ResponseBatch(vec![sample_response(), {
            let mut r = Response::new(other_flow(3));
            let mut s = Section::new();
            s.push(well_known::USER_ID, "bob");
            r.push_section(s);
            r
        }]);
        let bytes = msg.encode();
        let (decoded, used) = WireMessage::decode(&bytes).unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(used, bytes.len());

        let empty = WireMessage::ResponseBatch(Vec::new());
        let bytes = empty.encode();
        let (decoded, used) = WireMessage::decode(&bytes).unwrap().unwrap();
        assert_eq!(decoded, empty);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn partial_batch_frames_ask_for_more_data() {
        let msg = WireMessage::QueryBatch(vec![Query::new(flow()), Query::new(other_flow(1))]);
        let bytes = msg.encode();
        for cut in [0, 1, 12, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(WireMessage::decode(&bytes[..cut]).unwrap(), None);
        }
    }

    #[test]
    fn batch_addresses_are_the_first_elements() {
        let msg = WireMessage::QueryBatch(vec![Query::new(flow()), Query::new(other_flow(1))]);
        assert_eq!(msg.addresses(), flow().addresses());
        let empty = WireMessage::QueryBatch(Vec::new());
        assert_eq!(empty.addresses().src, Ipv4Addr::new(0, 0, 0, 0));
    }

    #[test]
    fn rejects_nested_batch_frames_without_recursing() {
        // A hostile peer nesting batch headers inside batch bodies must be
        // rejected at the first inner header — not by recursing through
        // thousands of levels until the stack gives out.
        let mut frame = WireMessage::Query(Query::new(flow())).encode();
        for _ in 0..10_000 {
            let header = format!("{MAGIC} QUERY-BATCH 1 {}\n", frame.len());
            let mut outer = header.into_bytes();
            outer.extend_from_slice(&frame);
            frame = outer;
        }
        assert!(matches!(
            WireMessage::decode(&frame),
            Err(ProtoError::BadFrame(_))
        ));
    }

    #[test]
    fn any_legal_batch_of_legal_elements_encodes_legally() {
        // The batch body bound must admit MAX_BATCH elements of the maximum
        // singleton size (plus singleton headers, far under 512 bytes each),
        // so a daemon fully answering a full batch can never emit a frame
        // the querier has to reject.
        const { assert!(MAX_BATCH_BODY >= MAX_BATCH * (codec::MAX_MESSAGE_SIZE + 128)) };
        // And a realistic large batch round-trips.
        let batch: Vec<Response> = (0..MAX_BATCH as u8)
            .map(|i| {
                let mut r = Response::new(other_flow(i));
                let mut s = Section::new();
                for k in 0..50 {
                    s.push(format!("key-{k}"), "x".repeat(200).as_str());
                }
                r.push_section(s);
                r
            })
            .collect();
        let msg = WireMessage::ResponseBatch(batch);
        let bytes = msg.encode();
        let (decoded, used) = WireMessage::decode(&bytes).unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn rejects_batch_limit_violations() {
        // Too many elements.
        let hdr = format!("{MAGIC} QUERY-BATCH {} 0\n", MAX_BATCH + 1);
        assert!(WireMessage::decode(hdr.as_bytes()).is_err());
        // Oversized declared body.
        let hdr = format!("{MAGIC} RESPONSE-BATCH 1 {}\n", MAX_BATCH_BODY + 1);
        assert!(matches!(
            WireMessage::decode(hdr.as_bytes()),
            Err(ProtoError::TooLarge { .. })
        ));
        // Count that does not match the body: one element declared, none sent.
        let hdr = format!("{MAGIC} QUERY-BATCH 1 0\n");
        assert!(WireMessage::decode(hdr.as_bytes()).is_err());
        // Body longer than its declared elements.
        let one = WireMessage::Query(Query::new(flow())).encode();
        let hdr = format!("{MAGIC} QUERY-BATCH 1 {}\n", one.len() + 3);
        let mut bytes = hdr.into_bytes();
        bytes.extend_from_slice(&one);
        bytes.extend_from_slice(b"xyz");
        assert!(WireMessage::decode(&bytes).is_err());
        // Element kind mismatching the envelope.
        let resp = WireMessage::Response(sample_response()).encode();
        let hdr = format!("{MAGIC} QUERY-BATCH 1 {}\n", resp.len());
        let mut bytes = hdr.into_bytes();
        bytes.extend_from_slice(&resp);
        assert!(WireMessage::decode(&bytes).is_err());
    }
}
