//! `cargo run -p xtask -- lint` — repository lints that rustc and clippy do
//! not cover, hand-rolled over the source text (the container has no `syn`,
//! and these checks only need line/token granularity):
//!
//! 1. **SAFETY comments** — every `unsafe` token in `vendor/tokio/src` must
//!    have a `// SAFETY:` comment on the same line or within the few lines
//!    above it. The vendored runtime is the only unsafe code in the
//!    workspace; each site must say why it is sound.
//! 2. **`unsafe_op_in_unsafe_fn`** — `vendor/tokio/src/lib.rs` must carry
//!    `#![deny(unsafe_op_in_unsafe_fn)]`, so an unsafe fn body cannot hide
//!    unsafe operations without their own block (and comment, per lint 1).
//! 3. **Blocking calls in async code** — inside `async fn` bodies and
//!    `async` blocks, `thread::sleep` and the blocking `std::net` connect /
//!    bind calls stall a reactor worker and are rejected. Test modules are
//!    exempt (test scaffolding blocks on purpose); a deliberate production
//!    use is escaped with an `xtask:allow-blocking` comment on the same
//!    line, which the lint counts and reports.
//! 4. **Toy-scheme containment** — the legacy toy Schnorr signature scheme
//!    is insecure by construction and compiled only under the crypto
//!    crate's `legacy-toy` feature. Outside its home modules
//!    (`crates/crypto/src/schnorr.rs` + `field.rs`), any *code* reference
//!    to `schnorr` (doc comments are fine) must have `legacy-toy` on the
//!    same line or within the few lines above it (a `#[cfg(feature =
//!    "legacy-toy")]` gate counts), so the toy scheme cannot quietly leak
//!    back into the production signing path.
//!
//! Exit status is non-zero if any lint fails, so CI can gate on it.
//!
//! `cargo run -p xtask -- e11-gate <baseline.json> <current.json>` is the
//! E11 latency-regression gate: it compares the current smoke run's
//! `latency_p99_us` cells against the committed `BENCH_E11.json` baseline
//! and fails on a greater-than-2x regression in any matching cell. The two
//! reports' environment rows must be identical first — p99 numbers from
//! different machines or knob configurations are not comparable, so a
//! mismatch skips the gate (exit 0, with a message) instead of failing it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use identxx_bench::report::{parse_json, BenchRow, Value};

const USAGE: &str = "usage: cargo run -p xtask -- lint\n       \
                     cargo run -p xtask -- e11-gate <baseline.json> <current.json>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("e11-gate") => match (args.get(1), args.get(2)) {
            (Some(baseline), Some(current)) => e11_gate(Path::new(baseline), Path::new(current)),
            _ => {
                eprintln!("e11-gate needs two paths\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some(other) => {
            eprintln!("unknown task `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut violations = Vec::new();

    let tokio_src = root.join("vendor/tokio/src");
    for file in rust_files(&tokio_src) {
        check_safety_comments(&file, &mut violations);
    }
    check_deny_attribute(&tokio_src.join("lib.rs"), &mut violations);

    let mut async_roots: Vec<PathBuf> = vec![root.join("src"), tokio_src];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                async_roots.push(src);
            }
        }
    }
    let mut files_scanned = 0usize;
    for dir in async_roots {
        for file in rust_files(&dir) {
            files_scanned += 1;
            check_blocking_in_async(&file, &mut violations);
            check_toy_scheme_containment(&file, &mut violations);
        }
    }

    if violations.is_empty() {
        println!("xtask lint: ok ({files_scanned} files scanned for blocking calls)");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// e11-gate: p99 latency-regression gate over BENCH_E11.json
// ---------------------------------------------------------------------------

/// Maximum tolerated p99 growth: a current cell must stay within this factor
/// of the committed baseline cell, or the gate fails.
const E11_P99_MAX_RATIO: f64 = 2.0;

/// What comparing a baseline report against a current one concluded.
enum GateOutcome {
    /// The two environment rows differ: the numbers came from different
    /// machine/knob configurations and are not comparable. The gate passes
    /// vacuously (with a message) rather than failing on apples-to-oranges.
    Skipped(String),
    /// Cells were compared; `regressions` holds one line per cell whose p99
    /// grew beyond [`E11_P99_MAX_RATIO`].
    Compared {
        report: Vec<String>,
        regressions: Vec<String>,
    },
}

/// `cargo run -p xtask -- e11-gate <baseline.json> <current.json>`: fails
/// (exit 1) when any matching E11 cell's `latency_p99_us` regressed beyond
/// [`E11_P99_MAX_RATIO`]; exits 0 when every cell is within bounds or the
/// environment rows do not match; exits 2 on unreadable/invalid input.
fn e11_gate(baseline_path: &Path, current_path: &Path) -> ExitCode {
    let read = |path: &Path| -> Result<Vec<BenchRow>, String> {
        let text =
            std::fs::read_to_string(path).map_err(|err| format!("{}: {err}", path.display()))?;
        parse_json(&text).map_err(|err| format!("{}: {err}", path.display()))
    };
    let pair = read(baseline_path).and_then(|baseline| Ok((baseline, read(current_path)?)));
    let (baseline, current) = match pair {
        Ok(pair) => pair,
        Err(err) => {
            eprintln!("e11-gate: {err}");
            return ExitCode::from(2);
        }
    };
    match e11_gate_outcome(&baseline, &current) {
        Err(err) => {
            eprintln!("e11-gate: {err}");
            ExitCode::from(2)
        }
        Ok(GateOutcome::Skipped(reason)) => {
            println!("e11-gate: skipped: {reason}");
            ExitCode::SUCCESS
        }
        Ok(GateOutcome::Compared {
            report,
            regressions,
        }) => {
            for line in &report {
                println!("e11-gate: {line}");
            }
            if regressions.is_empty() {
                println!("e11-gate: ok (every cell within {E11_P99_MAX_RATIO}x of baseline p99)");
                ExitCode::SUCCESS
            } else {
                for regression in &regressions {
                    eprintln!("e11-gate: REGRESSION: {regression}");
                }
                ExitCode::FAILURE
            }
        }
    }
}

fn environment_of(rows: &[BenchRow]) -> Option<&BenchRow> {
    rows.iter()
        .find(|r| matches!(r.get("row"), Some(Value::Str(s)) if s == "environment"))
}

/// The identity of one E11 cell: every configuration field that must agree
/// before two p99 numbers are the same experiment.
fn cell_key(row: &BenchRow) -> String {
    [
        "experiment",
        "churn",
        "daemons",
        "shards",
        "offered_rate_per_sec",
        "duration_s",
    ]
    .iter()
    .map(|key| match row.get(key) {
        Some(Value::Str(s)) => format!("{key}={s}"),
        Some(Value::Num(n)) => format!("{key}={n}"),
        None => format!("{key}=?"),
    })
    .collect::<Vec<_>>()
    .join(" ")
}

fn p99_of(row: &BenchRow) -> Option<f64> {
    match row.get("latency_p99_us") {
        Some(Value::Num(n)) => Some(*n),
        _ => None,
    }
}

fn e11_gate_outcome(baseline: &[BenchRow], current: &[BenchRow]) -> Result<GateOutcome, String> {
    let env_baseline =
        environment_of(baseline).ok_or_else(|| "baseline has no environment row".to_string())?;
    let env_current =
        environment_of(current).ok_or_else(|| "current run has no environment row".to_string())?;
    if env_baseline != env_current {
        return Ok(GateOutcome::Skipped(format!(
            "environment rows differ (baseline {env_baseline:?} vs current {env_current:?}); \
             latency numbers from different environments are not comparable"
        )));
    }
    let mut report = Vec::new();
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for base_row in baseline {
        let Some(base_p99) = p99_of(base_row) else {
            continue;
        };
        let key = cell_key(base_row);
        let matching = current
            .iter()
            .find(|row| p99_of(row).is_some() && cell_key(row) == key);
        let Some(current_row) = matching else {
            report.push(format!("{key}: no matching cell in current run; skipped"));
            continue;
        };
        let current_p99 = p99_of(current_row).expect("matching cell has p99");
        compared += 1;
        let ratio = if base_p99 > 0.0 {
            current_p99 / base_p99
        } else {
            f64::INFINITY
        };
        report.push(format!(
            "{key}: p99 {base_p99:.0}us -> {current_p99:.0}us ({ratio:.2}x)"
        ));
        if current_p99 > base_p99 * E11_P99_MAX_RATIO {
            regressions.push(format!(
                "{key}: p99 {base_p99:.0}us -> {current_p99:.0}us exceeds the \
                 {E11_P99_MAX_RATIO}x budget"
            ));
        }
    }
    if compared == 0 {
        return Err(
            "no comparable cells: baseline and current share no cell key with a p99".to_string(),
        );
    }
    Ok(GateOutcome::Compared {
        report,
        regressions,
    })
}

/// Walk up from the executable's cwd to the directory holding the workspace
/// `Cargo.toml` (cargo runs xtask from the workspace root, but be tolerant).
fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            panic!("workspace root not found above cwd");
        }
    }
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Strips line comments, string/char literal *contents*, and lifetimes from
/// one source line so that brace counting and token matching see only code.
/// Raw strings and block comments are not used in this workspace's sources;
/// the scanner treats `"` inside them like any string delimiter, which is
/// conservative (it can only hide tokens, never invent them — and braces in
/// format strings are the actual hazard this guards against).
fn sanitize(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break,
            b'"' => {
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            out.push('"');
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Char literal ('x', '\n', '\u{..}') vs lifetime ('a).
                let rest = &bytes[i + 1..];
                let close = if rest.first() == Some(&b'\\') {
                    rest.iter().skip(1).position(|&b| b == b'\'').map(|p| p + 1)
                } else if rest.len() >= 2 && rest[1] == b'\'' {
                    Some(1)
                } else {
                    None
                };
                match close {
                    Some(offset) => i += offset + 2, // skip the whole literal
                    None => i += 1,                  // lifetime: drop the quote
                }
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

/// True if `line` contains `word` as a standalone token (not part of a
/// longer identifier such as `unsafe_op_in_unsafe_fn`).
fn has_token(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before = line[..at].chars().next_back();
        let after = line[at + word.len()..].chars().next();
        let boundary = |c: Option<char>| !c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary(before) && boundary(after) {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// How many raw lines above an `unsafe` token a `// SAFETY:` comment still
/// covers it (the comment may span several lines between them).
const SAFETY_WINDOW: usize = 6;

fn check_safety_comments(path: &Path, violations: &mut Vec<String>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        violations.push(format!("{}: unreadable", path.display()));
        return;
    };
    let raw: Vec<&str> = text.lines().collect();
    for (idx, line) in raw.iter().enumerate() {
        if !has_token(&sanitize(line), "unsafe") {
            continue;
        }
        let window_start = idx.saturating_sub(SAFETY_WINDOW);
        let covered = raw[window_start..=idx]
            .iter()
            .any(|l| l.to_ascii_lowercase().contains("safety:"));
        if !covered {
            violations.push(format!(
                "{}:{}: `unsafe` without a `// SAFETY:` comment within {} lines above",
                path.display(),
                idx + 1,
                SAFETY_WINDOW
            ));
        }
    }
}

fn check_deny_attribute(lib_rs: &Path, violations: &mut Vec<String>) {
    match std::fs::read_to_string(lib_rs) {
        Ok(text) if text.contains("#![deny(unsafe_op_in_unsafe_fn)]") => {}
        Ok(_) => violations.push(format!(
            "{}: missing `#![deny(unsafe_op_in_unsafe_fn)]`",
            lib_rs.display()
        )),
        Err(_) => violations.push(format!("{}: unreadable", lib_rs.display())),
    }
}

const BLOCKING_PATTERNS: &[&str] = &[
    "thread::sleep",
    "std::net::TcpStream::connect",
    "std::net::TcpListener::bind",
];

const ALLOW_MARKER: &str = "xtask:allow-blocking";

/// The allow marker may sit on the flagged line or in a comment up to this
/// many lines above it.
const ALLOW_WINDOW: usize = 3;

fn check_blocking_in_async(path: &Path, violations: &mut Vec<String>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let mut depth = 0usize;
    // Brace depths at which async bodies opened; non-empty = inside async.
    let mut async_stack: Vec<usize> = Vec::new();
    let mut pending_async = false;
    // Depth of a `#[cfg(test)] mod … { … }` body being skipped, if any.
    let mut test_mod_depth: Option<usize> = None;
    let mut pending_cfg_test = false;

    let raw_lines: Vec<&str> = text.lines().collect();
    for (idx, raw) in raw_lines.iter().copied().enumerate() {
        let line = sanitize(raw);
        if raw.trim_start().starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        let starts_test_mod = pending_cfg_test && has_token(&line, "mod");
        if has_token(&line, "async") {
            pending_async = true;
        }

        let allowed = raw_lines[idx.saturating_sub(ALLOW_WINDOW)..=idx]
            .iter()
            .any(|l| l.contains(ALLOW_MARKER));
        if !async_stack.is_empty()
            && test_mod_depth.is_none()
            && !allowed
            && BLOCKING_PATTERNS.iter().any(|p| line.contains(p))
        {
            violations.push(format!(
                "{}:{}: blocking call in async code (escape with `// {}` if deliberate): {}",
                path.display(),
                idx + 1,
                ALLOW_MARKER,
                raw.trim()
            ));
        }

        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if starts_test_mod && test_mod_depth.is_none() {
                        test_mod_depth = Some(depth);
                        pending_cfg_test = false;
                    }
                    if pending_async {
                        async_stack.push(depth);
                        pending_async = false;
                    }
                }
                '}' => {
                    if async_stack.last() == Some(&depth) {
                        async_stack.pop();
                    }
                    if test_mod_depth == Some(depth) {
                        test_mod_depth = None;
                    }
                    depth = depth.saturating_sub(1);
                }
                // A statement terminator before any `{` means the `async`
                // token did not open a body here (e.g. a use or a string).
                ';' if pending_async => pending_async = false,
                _ => {}
            }
        }
    }
}

/// The toy scheme's home modules, where bare `schnorr` references are the
/// implementation itself rather than a leak.
const TOY_SCHEME_HOMES: &[&str] = &["crates/crypto/src/schnorr.rs", "crates/crypto/src/field.rs"];

/// The feature gate whose presence (on the line or just above, e.g. a
/// `#[cfg(feature = "legacy-toy")]` attribute) licenses a toy-scheme
/// reference.
const TOY_MARKER: &str = "legacy-toy";

/// Lines above a flagged reference in which [`TOY_MARKER`] still covers it.
const TOY_WINDOW: usize = 3;

fn check_toy_scheme_containment(path: &Path, violations: &mut Vec<String>) {
    let display = path.display().to_string().replace('\\', "/");
    if TOY_SCHEME_HOMES.iter().any(|home| display.ends_with(home)) {
        return;
    }
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let raw_lines: Vec<&str> = text.lines().collect();
    for (idx, raw) in raw_lines.iter().copied().enumerate() {
        // Sanitize first: prose mentions in comments and strings are fine,
        // only code paths (`schnorr::sign`, `pub mod schnorr`) are leaks.
        if !has_token(&sanitize(raw).to_ascii_lowercase(), "schnorr") {
            continue;
        }
        let covered = raw_lines[idx.saturating_sub(TOY_WINDOW)..=idx]
            .iter()
            .any(|l| l.contains(TOY_MARKER));
        if !covered {
            violations.push(format!(
                "{}:{}: toy-scheme reference outside its `{}` gate (add a \
                 `#[cfg(feature = \"{}\")]` within {} lines above, or use the real \
                 ed25519 API): {}",
                path.display(),
                idx + 1,
                TOY_MARKER,
                TOY_MARKER,
                TOY_WINDOW,
                raw.trim()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e11_env() -> BenchRow {
        BenchRow::new()
            .with("row", "environment")
            .with("available_cores", 1usize)
            .with("identxx_runtime", "reactor")
    }

    fn e11_cell(churn: &str, p99: f64) -> BenchRow {
        BenchRow::new()
            .with("experiment", "e11")
            .with("churn", churn)
            .with("daemons", 1024usize)
            .with("shards", 4usize)
            .with("offered_rate_per_sec", 1000usize)
            .with("duration_s", 4usize)
            .with("latency_p99_us", p99)
    }

    #[test]
    fn e11_gate_passes_within_budget_and_fails_beyond_it() {
        let baseline = vec![e11_cell("off", 2000.0), e11_cell("on", 2400.0), e11_env()];

        let ok = vec![e11_cell("off", 3900.0), e11_cell("on", 2000.0), e11_env()];
        match e11_gate_outcome(&baseline, &ok).unwrap() {
            GateOutcome::Compared { regressions, .. } => assert!(regressions.is_empty()),
            GateOutcome::Skipped(reason) => panic!("unexpected skip: {reason}"),
        }

        let slow = vec![e11_cell("off", 4100.0), e11_cell("on", 2000.0), e11_env()];
        match e11_gate_outcome(&baseline, &slow).unwrap() {
            GateOutcome::Compared { regressions, .. } => {
                assert_eq!(regressions.len(), 1, "{regressions:?}");
                assert!(regressions[0].contains("churn=off"), "{regressions:?}");
            }
            GateOutcome::Skipped(reason) => panic!("unexpected skip: {reason}"),
        }
    }

    #[test]
    fn e11_gate_skips_on_environment_mismatch() {
        let baseline = vec![e11_cell("off", 2000.0), e11_env()];
        let other_env = BenchRow::new()
            .with("row", "environment")
            .with("available_cores", 8usize)
            .with("identxx_runtime", "reactor");
        let current = vec![e11_cell("off", 9000.0), other_env];
        assert!(matches!(
            e11_gate_outcome(&baseline, &current).unwrap(),
            GateOutcome::Skipped(_)
        ));
    }

    #[test]
    fn e11_gate_reports_missing_cells_without_failing() {
        let baseline = vec![e11_cell("off", 2000.0), e11_cell("on", 2400.0), e11_env()];
        // The churn=on cell vanished (different sweep shape): reported, not
        // a regression — but at least one cell must still compare.
        let current = vec![e11_cell("off", 2100.0), e11_env()];
        match e11_gate_outcome(&baseline, &current).unwrap() {
            GateOutcome::Compared {
                report,
                regressions,
            } => {
                assert!(regressions.is_empty());
                assert!(
                    report.iter().any(|l| l.contains("no matching cell")),
                    "{report:?}"
                );
            }
            GateOutcome::Skipped(reason) => panic!("unexpected skip: {reason}"),
        }

        let disjoint = vec![e11_cell("elsewhere", 2100.0), e11_env()];
        assert!(e11_gate_outcome(&baseline, &disjoint).is_err());
    }

    #[test]
    fn sanitize_strips_strings_comments_and_lifetimes() {
        assert_eq!(sanitize("let x = 1; // comment { } unsafe"), "let x = 1; ");
        assert_eq!(sanitize(r#"format!("{e:?}")"#), r#"format!("")"#);
        assert_eq!(sanitize("fn f<'a>(x: &'a str)"), "fn f<a>(x: &a str)");
        assert_eq!(sanitize("let c = '{';"), "let c = ;");
        assert_eq!(sanitize(r"let c = '\n';"), "let c = ;");
    }

    #[test]
    fn token_matching_respects_identifier_boundaries() {
        assert!(has_token("unsafe {", "unsafe"));
        assert!(!has_token("#![deny(unsafe_op_in_unsafe_fn)]", "unsafe"));
        assert!(has_token("x unsafe_y unsafe", "unsafe"));
    }

    fn blocking(source: &str) -> Vec<String> {
        let dir = std::env::temp_dir().join(format!("xtask-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.rs");
        std::fs::write(&path, source).unwrap();
        let mut v = Vec::new();
        check_blocking_in_async(&path, &mut v);
        v
    }

    #[test]
    fn blocking_call_in_async_fn_is_flagged() {
        let v = blocking("async fn f() {\n    std::thread::sleep(d);\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("probe.rs:2"), "{v:?}");
    }

    #[test]
    fn blocking_call_in_sync_fn_is_not_flagged() {
        let v = blocking("fn f() {\n    std::thread::sleep(d);\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn async_block_inside_sync_fn_is_scanned() {
        let v = blocking("fn f() {\n    block_on(async {\n        thread::sleep(d);\n    });\n    thread::sleep(d);\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("probe.rs:3"), "{v:?}");
    }

    #[test]
    fn test_modules_and_allow_marker_are_exempt() {
        let flagged = blocking(
            "#[cfg(test)]\nmod tests {\n    async fn f() {\n        thread::sleep(d);\n    }\n}\n",
        );
        assert!(flagged.is_empty(), "{flagged:?}");
        let escaped =
            blocking("async fn f() {\n    thread::sleep(d); // xtask:allow-blocking why\n}\n");
        assert!(escaped.is_empty(), "{escaped:?}");
    }

    #[test]
    fn toy_scheme_lint_flags_ungated_code_but_not_comments() {
        let dir = std::env::temp_dir().join(format!("xtask-toy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.rs");
        // The fixture's module name is assembled at runtime so this source
        // file never contains the bare token the lint hunts for.
        let toy = String::from("sch") + "norr";
        std::fs::write(
            &path,
            format!(
                "// the {toy} scheme is mentioned here in prose\n\
                 #[cfg(feature = \"legacy-toy\")]\n\
                 use identxx_crypto::{toy};\n\
                 \n\
                 \n\
                 \n\
                 fn leak() {{ let _ = {toy}::sign(7, b\"m\"); }}\n"
            ),
        )
        .unwrap();
        let mut v = Vec::new();
        check_toy_scheme_containment(&path, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("probe.rs:7"), "{v:?}");
    }

    #[test]
    fn toy_scheme_home_modules_are_exempt() {
        let dir = std::env::temp_dir()
            .join(format!("xtask-toy-home-{}", std::process::id()))
            .join("crates/crypto/src");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("schnorr.rs");
        std::fs::write(&path, "pub fn schnorr_sign() {}\n").unwrap();
        let mut v = Vec::new();
        check_toy_scheme_containment(&path, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn safety_window_accepts_comment_and_rejects_bare_unsafe() {
        let dir = std::env::temp_dir().join(format!("xtask-safety-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.rs");
        let padding = "\n".repeat(SAFETY_WINDOW + 1);
        std::fs::write(
            &path,
            format!(
                "// SAFETY: fine\nlet x = unsafe {{ f() }};{padding}let y = unsafe {{ g() }};\n"
            ),
        )
        .unwrap();
        let mut v = Vec::new();
        check_safety_comments(&path, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].contains(&format!("probe.rs:{}", SAFETY_WINDOW + 3)),
            "{v:?}"
        );
    }
}
