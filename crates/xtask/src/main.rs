//! `cargo run -p xtask -- lint` — repository lints that rustc and clippy do
//! not cover, hand-rolled over the source text (the container has no `syn`,
//! and these checks only need line/token granularity):
//!
//! 1. **SAFETY comments** — every `unsafe` token in `vendor/tokio/src` must
//!    have a `// SAFETY:` comment on the same line or within the few lines
//!    above it. The vendored runtime is the only unsafe code in the
//!    workspace; each site must say why it is sound.
//! 2. **`unsafe_op_in_unsafe_fn`** — `vendor/tokio/src/lib.rs` must carry
//!    `#![deny(unsafe_op_in_unsafe_fn)]`, so an unsafe fn body cannot hide
//!    unsafe operations without their own block (and comment, per lint 1).
//! 3. **Blocking calls in async code** — inside `async fn` bodies and
//!    `async` blocks, `thread::sleep` and the blocking `std::net` connect /
//!    bind calls stall a reactor worker and are rejected. Test modules are
//!    exempt (test scaffolding blocks on purpose); a deliberate production
//!    use is escaped with an `xtask:allow-blocking` comment on the same
//!    line, which the lint counts and reports.
//! 4. **Toy-scheme containment** — the legacy toy Schnorr signature scheme
//!    is insecure by construction and compiled only under the crypto
//!    crate's `legacy-toy` feature. Outside its home modules
//!    (`crates/crypto/src/schnorr.rs` + `field.rs`), any *code* reference
//!    to `schnorr` (doc comments are fine) must have `legacy-toy` on the
//!    same line or within the few lines above it (a `#[cfg(feature =
//!    "legacy-toy")]` gate counts), so the toy scheme cannot quietly leak
//!    back into the production signing path.
//!
//! Exit status is non-zero if any lint fails, so CI can gate on it.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task `{other}`\n\nusage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut violations = Vec::new();

    let tokio_src = root.join("vendor/tokio/src");
    for file in rust_files(&tokio_src) {
        check_safety_comments(&file, &mut violations);
    }
    check_deny_attribute(&tokio_src.join("lib.rs"), &mut violations);

    let mut async_roots: Vec<PathBuf> = vec![root.join("src"), tokio_src];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                async_roots.push(src);
            }
        }
    }
    let mut files_scanned = 0usize;
    for dir in async_roots {
        for file in rust_files(&dir) {
            files_scanned += 1;
            check_blocking_in_async(&file, &mut violations);
            check_toy_scheme_containment(&file, &mut violations);
        }
    }

    if violations.is_empty() {
        println!("xtask lint: ok ({files_scanned} files scanned for blocking calls)");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Walk up from the executable's cwd to the directory holding the workspace
/// `Cargo.toml` (cargo runs xtask from the workspace root, but be tolerant).
fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            panic!("workspace root not found above cwd");
        }
    }
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Strips line comments, string/char literal *contents*, and lifetimes from
/// one source line so that brace counting and token matching see only code.
/// Raw strings and block comments are not used in this workspace's sources;
/// the scanner treats `"` inside them like any string delimiter, which is
/// conservative (it can only hide tokens, never invent them — and braces in
/// format strings are the actual hazard this guards against).
fn sanitize(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break,
            b'"' => {
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            out.push('"');
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Char literal ('x', '\n', '\u{..}') vs lifetime ('a).
                let rest = &bytes[i + 1..];
                let close = if rest.first() == Some(&b'\\') {
                    rest.iter().skip(1).position(|&b| b == b'\'').map(|p| p + 1)
                } else if rest.len() >= 2 && rest[1] == b'\'' {
                    Some(1)
                } else {
                    None
                };
                match close {
                    Some(offset) => i += offset + 2, // skip the whole literal
                    None => i += 1,                  // lifetime: drop the quote
                }
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

/// True if `line` contains `word` as a standalone token (not part of a
/// longer identifier such as `unsafe_op_in_unsafe_fn`).
fn has_token(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before = line[..at].chars().next_back();
        let after = line[at + word.len()..].chars().next();
        let boundary = |c: Option<char>| !c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary(before) && boundary(after) {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// How many raw lines above an `unsafe` token a `// SAFETY:` comment still
/// covers it (the comment may span several lines between them).
const SAFETY_WINDOW: usize = 6;

fn check_safety_comments(path: &Path, violations: &mut Vec<String>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        violations.push(format!("{}: unreadable", path.display()));
        return;
    };
    let raw: Vec<&str> = text.lines().collect();
    for (idx, line) in raw.iter().enumerate() {
        if !has_token(&sanitize(line), "unsafe") {
            continue;
        }
        let window_start = idx.saturating_sub(SAFETY_WINDOW);
        let covered = raw[window_start..=idx]
            .iter()
            .any(|l| l.to_ascii_lowercase().contains("safety:"));
        if !covered {
            violations.push(format!(
                "{}:{}: `unsafe` without a `// SAFETY:` comment within {} lines above",
                path.display(),
                idx + 1,
                SAFETY_WINDOW
            ));
        }
    }
}

fn check_deny_attribute(lib_rs: &Path, violations: &mut Vec<String>) {
    match std::fs::read_to_string(lib_rs) {
        Ok(text) if text.contains("#![deny(unsafe_op_in_unsafe_fn)]") => {}
        Ok(_) => violations.push(format!(
            "{}: missing `#![deny(unsafe_op_in_unsafe_fn)]`",
            lib_rs.display()
        )),
        Err(_) => violations.push(format!("{}: unreadable", lib_rs.display())),
    }
}

const BLOCKING_PATTERNS: &[&str] = &[
    "thread::sleep",
    "std::net::TcpStream::connect",
    "std::net::TcpListener::bind",
];

const ALLOW_MARKER: &str = "xtask:allow-blocking";

/// The allow marker may sit on the flagged line or in a comment up to this
/// many lines above it.
const ALLOW_WINDOW: usize = 3;

fn check_blocking_in_async(path: &Path, violations: &mut Vec<String>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let mut depth = 0usize;
    // Brace depths at which async bodies opened; non-empty = inside async.
    let mut async_stack: Vec<usize> = Vec::new();
    let mut pending_async = false;
    // Depth of a `#[cfg(test)] mod … { … }` body being skipped, if any.
    let mut test_mod_depth: Option<usize> = None;
    let mut pending_cfg_test = false;

    let raw_lines: Vec<&str> = text.lines().collect();
    for (idx, raw) in raw_lines.iter().copied().enumerate() {
        let line = sanitize(raw);
        if raw.trim_start().starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        let starts_test_mod = pending_cfg_test && has_token(&line, "mod");
        if has_token(&line, "async") {
            pending_async = true;
        }

        let allowed = raw_lines[idx.saturating_sub(ALLOW_WINDOW)..=idx]
            .iter()
            .any(|l| l.contains(ALLOW_MARKER));
        if !async_stack.is_empty()
            && test_mod_depth.is_none()
            && !allowed
            && BLOCKING_PATTERNS.iter().any(|p| line.contains(p))
        {
            violations.push(format!(
                "{}:{}: blocking call in async code (escape with `// {}` if deliberate): {}",
                path.display(),
                idx + 1,
                ALLOW_MARKER,
                raw.trim()
            ));
        }

        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if starts_test_mod && test_mod_depth.is_none() {
                        test_mod_depth = Some(depth);
                        pending_cfg_test = false;
                    }
                    if pending_async {
                        async_stack.push(depth);
                        pending_async = false;
                    }
                }
                '}' => {
                    if async_stack.last() == Some(&depth) {
                        async_stack.pop();
                    }
                    if test_mod_depth == Some(depth) {
                        test_mod_depth = None;
                    }
                    depth = depth.saturating_sub(1);
                }
                // A statement terminator before any `{` means the `async`
                // token did not open a body here (e.g. a use or a string).
                ';' if pending_async => pending_async = false,
                _ => {}
            }
        }
    }
}

/// The toy scheme's home modules, where bare `schnorr` references are the
/// implementation itself rather than a leak.
const TOY_SCHEME_HOMES: &[&str] = &["crates/crypto/src/schnorr.rs", "crates/crypto/src/field.rs"];

/// The feature gate whose presence (on the line or just above, e.g. a
/// `#[cfg(feature = "legacy-toy")]` attribute) licenses a toy-scheme
/// reference.
const TOY_MARKER: &str = "legacy-toy";

/// Lines above a flagged reference in which [`TOY_MARKER`] still covers it.
const TOY_WINDOW: usize = 3;

fn check_toy_scheme_containment(path: &Path, violations: &mut Vec<String>) {
    let display = path.display().to_string().replace('\\', "/");
    if TOY_SCHEME_HOMES.iter().any(|home| display.ends_with(home)) {
        return;
    }
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let raw_lines: Vec<&str> = text.lines().collect();
    for (idx, raw) in raw_lines.iter().copied().enumerate() {
        // Sanitize first: prose mentions in comments and strings are fine,
        // only code paths (`schnorr::sign`, `pub mod schnorr`) are leaks.
        if !has_token(&sanitize(raw).to_ascii_lowercase(), "schnorr") {
            continue;
        }
        let covered = raw_lines[idx.saturating_sub(TOY_WINDOW)..=idx]
            .iter()
            .any(|l| l.contains(TOY_MARKER));
        if !covered {
            violations.push(format!(
                "{}:{}: toy-scheme reference outside its `{}` gate (add a \
                 `#[cfg(feature = \"{}\")]` within {} lines above, or use the real \
                 ed25519 API): {}",
                path.display(),
                idx + 1,
                TOY_MARKER,
                TOY_MARKER,
                TOY_WINDOW,
                raw.trim()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_strips_strings_comments_and_lifetimes() {
        assert_eq!(sanitize("let x = 1; // comment { } unsafe"), "let x = 1; ");
        assert_eq!(sanitize(r#"format!("{e:?}")"#), r#"format!("")"#);
        assert_eq!(sanitize("fn f<'a>(x: &'a str)"), "fn f<a>(x: &a str)");
        assert_eq!(sanitize("let c = '{';"), "let c = ;");
        assert_eq!(sanitize(r"let c = '\n';"), "let c = ;");
    }

    #[test]
    fn token_matching_respects_identifier_boundaries() {
        assert!(has_token("unsafe {", "unsafe"));
        assert!(!has_token("#![deny(unsafe_op_in_unsafe_fn)]", "unsafe"));
        assert!(has_token("x unsafe_y unsafe", "unsafe"));
    }

    fn blocking(source: &str) -> Vec<String> {
        let dir = std::env::temp_dir().join(format!("xtask-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.rs");
        std::fs::write(&path, source).unwrap();
        let mut v = Vec::new();
        check_blocking_in_async(&path, &mut v);
        v
    }

    #[test]
    fn blocking_call_in_async_fn_is_flagged() {
        let v = blocking("async fn f() {\n    std::thread::sleep(d);\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("probe.rs:2"), "{v:?}");
    }

    #[test]
    fn blocking_call_in_sync_fn_is_not_flagged() {
        let v = blocking("fn f() {\n    std::thread::sleep(d);\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn async_block_inside_sync_fn_is_scanned() {
        let v = blocking("fn f() {\n    block_on(async {\n        thread::sleep(d);\n    });\n    thread::sleep(d);\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("probe.rs:3"), "{v:?}");
    }

    #[test]
    fn test_modules_and_allow_marker_are_exempt() {
        let flagged = blocking(
            "#[cfg(test)]\nmod tests {\n    async fn f() {\n        thread::sleep(d);\n    }\n}\n",
        );
        assert!(flagged.is_empty(), "{flagged:?}");
        let escaped =
            blocking("async fn f() {\n    thread::sleep(d); // xtask:allow-blocking why\n}\n");
        assert!(escaped.is_empty(), "{escaped:?}");
    }

    #[test]
    fn toy_scheme_lint_flags_ungated_code_but_not_comments() {
        let dir = std::env::temp_dir().join(format!("xtask-toy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.rs");
        // The fixture's module name is assembled at runtime so this source
        // file never contains the bare token the lint hunts for.
        let toy = String::from("sch") + "norr";
        std::fs::write(
            &path,
            format!(
                "// the {toy} scheme is mentioned here in prose\n\
                 #[cfg(feature = \"legacy-toy\")]\n\
                 use identxx_crypto::{toy};\n\
                 \n\
                 \n\
                 \n\
                 fn leak() {{ let _ = {toy}::sign(7, b\"m\"); }}\n"
            ),
        )
        .unwrap();
        let mut v = Vec::new();
        check_toy_scheme_containment(&path, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("probe.rs:7"), "{v:?}");
    }

    #[test]
    fn toy_scheme_home_modules_are_exempt() {
        let dir = std::env::temp_dir()
            .join(format!("xtask-toy-home-{}", std::process::id()))
            .join("crates/crypto/src");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("schnorr.rs");
        std::fs::write(&path, "pub fn schnorr_sign() {}\n").unwrap();
        let mut v = Vec::new();
        check_toy_scheme_containment(&path, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn safety_window_accepts_comment_and_rejects_bare_unsafe() {
        let dir = std::env::temp_dir().join(format!("xtask-safety-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.rs");
        let padding = "\n".repeat(SAFETY_WINDOW + 1);
        std::fs::write(
            &path,
            format!(
                "// SAFETY: fine\nlet x = unsafe {{ f() }};{padding}let y = unsafe {{ g() }};\n"
            ),
        )
        .unwrap();
        let mut v = Vec::new();
        check_safety_comments(&path, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].contains(&format!("probe.rs:{}", SAFETY_WINDOW + 3)),
            "{v:?}"
        );
    }
}
