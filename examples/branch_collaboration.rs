//! §4 "Network Collaboration" and "Incremental Benefit": two branches of the
//! same enterprise filter traffic the other branch would reject before it
//! crosses the bottleneck link, and a controller answers ident++ queries on
//! behalf of legacy hosts that run no daemon.
//!
//! Run with: `cargo run --example branch_collaboration`

use identxx::controller::intercept::{PrefixAugmenter, StaticInterceptor};
use identxx::controller::{ControllerConfig, IdentxxController, NetworkMap};
use identxx::prelude::*;

fn main() {
    // Branch A's controller only forwards traffic toward branch B (10.2/16)
    // that branch B has declared it will accept. Branch B's declaration
    // arrives as an augmented section on the destination-side response.
    let policy = "\
table <branch-b> { 10.2.0.0/16 }
block all
# local traffic is unrestricted in this example
pass from 10.1.0.0/16 to 10.1.0.0/16 keep state
# inter-branch traffic must be explicitly accepted by the remote branch
pass from 10.1.0.0/16 to <branch-b> with includes(@dst[branch-accepts], 443) keep state
";
    let (topology, _sw, _ctrl, _hosts) = Topology::star(6, LinkProps::default());
    // Re-address hosts: first three in branch A (10.1/16), last three in B (10.2/16).
    let mut config = ControllerConfig::new().with_control_file("00-branch-a.control", policy);
    config.default_decision = Decision::Block;
    let mut controller = IdentxxController::new(config)
        .unwrap()
        .with_network(NetworkMap::new(topology));

    let branch_a: Vec<Ipv4Addr> = (1..=3).map(|i| Ipv4Addr::new(10, 1, 0, i)).collect();
    let branch_b: Vec<Ipv4Addr> = (1..=3).map(|i| Ipv4Addr::new(10, 2, 0, i)).collect();
    for addr in branch_a.iter() {
        controller.register_daemon(Daemon::bare(Host::new(format!("a-{addr}"), *addr)));
    }
    // Branch B's hosts are behind the WAN: branch A cannot query them
    // directly. Its controller intercepts those queries (incremental benefit)…
    controller.add_interceptor(Box::new(StaticInterceptor::new(
        "branch-b-gateway",
        branch_b.clone(),
        vec![("hostname".to_string(), "branch-b-gateway".to_string())],
    )));
    // …and augments the responses with what branch B is willing to accept.
    controller.add_augmenter(Box::new(PrefixAugmenter::new(
        "branch-b-policy",
        Ipv4Addr::new(10, 2, 0, 0),
        16,
        vec![("branch-accepts".to_string(), "443 993".to_string())],
    )));

    // alice in branch A talks HTTPS to branch B: accepted remotely, forwarded.
    let https = controller
        .daemons_mut()
        .get_mut(branch_a[0])
        .unwrap()
        .host_mut()
        .open_connection("alice", firefox_app(), 40000, branch_b[0], 443);
    let decision = controller.decide(&https, 0);
    println!(
        "https to branch B: {:?} (queries sent to real daemons: {})",
        decision.verdict.decision, decision.queries_issued
    );

    // The same host tries SMB toward branch B: branch B did not list 445, so
    // branch A drops it locally and saves the WAN link the useless traffic.
    let smb = controller
        .daemons_mut()
        .get_mut(branch_a[0])
        .unwrap()
        .host_mut()
        .open_connection("alice", firefox_app(), 40001, branch_b[1], 445);
    let decision = controller.decide(&smb, 10);
    println!(
        "smb to branch B:   {:?} (filtered at the source branch)",
        decision.verdict.decision
    );

    // Local branch-A traffic is unaffected.
    let local = controller
        .daemons_mut()
        .get_mut(branch_a[1])
        .unwrap()
        .host_mut()
        .open_connection("bob", firefox_app(), 40002, branch_a[2], 8080);
    println!(
        "local branch-A flow: {:?}",
        controller.decide(&local, 20).verdict.decision
    );

    println!(
        "\naudit: {} decisions, {} allowed, {} blocked",
        controller.audit().len(),
        controller.audit().passed().count(),
        controller.audit().blocked().count()
    );
}
