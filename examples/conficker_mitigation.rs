//! Figure 8: stopping Conficker with an identity- and patch-aware rule.
//!
//! The rule admits connections to the Windows "Server" service only from
//! System users inside the LAN, and only when the destination has the
//! MS08-067 patch installed — a policy no port-based firewall can state,
//! because ports 445 flows from the worm and from legitimate system services
//! are indistinguishable at the network layer.
//!
//! Run with: `cargo run --example conficker_mitigation`

use identxx::core::figures::figure8_conficker;
use identxx::core::scenario::render_table;
use identxx::prelude::*;

fn main() {
    let scenario = figure8_conficker();
    println!("{}", scenario.name);
    println!("{}", render_table(&scenario.flows));

    // Contrast with the port-based baseline: it must either open 445 for
    // everyone in the LAN (letting the worm spread) or close it entirely
    // (breaking file service).
    use identxx::baselines::{FlowClassifier, VanillaFirewall};
    let mut open_fw = VanillaFirewall::enterprise_default(Ipv4Addr::new(10, 0, 0, 0), 16);
    let worm_flow = FiveTuple::tcp([10, 0, 0, 4], 50123, [10, 0, 0, 2], 445);
    println!(
        "vanilla firewall with LAN SMB open: worm flow to unpatched host allowed = {}",
        open_fw.allow(&worm_flow)
    );
    println!(
        "ident++ decision for the same situation: {:?}",
        scenario
            .flows
            .iter()
            .find(|f| f.description.contains("unpatched"))
            .map(|f| f.actual)
            .unwrap()
    );

    if scenario.all_match() {
        println!("\nall decisions match the paper.");
    } else {
        println!("\nMISMATCH against the paper.");
        std::process::exit(1);
    }
}
