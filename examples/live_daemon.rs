//! The deployment-shaped control loop: two ident++ daemons served over real
//! TCP sockets (tokio), and a full `IdentxxController` flow-setup decision
//! driven through the `NetworkBackend` — both flow ends queried
//! concurrently, exactly as a controller would query port 783 on the hosts.
//!
//! Run with: `cargo run --example live_daemon`

use std::time::{Duration, Instant};

use identxx::daemon::Daemon;
use identxx::hostmodel::{Executable, Host};
use identxx::net::DaemonServer;
use identxx::prelude::*;

#[tokio::main(flavor = "current_thread")]
async fn main() {
    // The client end-host: alice runs thunderbird toward the mail server.
    let laptop_ip = Ipv4Addr::new(10, 0, 0, 7);
    let server_ip = Ipv4Addr::new(10, 0, 0, 25);
    let mut laptop = Daemon::bare(Host::new("laptop-alice", laptop_ip));
    let thunderbird = Executable::new(
        "/usr/bin/thunderbird",
        "thunderbird",
        78,
        "mozilla",
        "email-client",
    );
    let flow = laptop
        .host_mut()
        .open_connection("alice", thunderbird, 40123, server_ip, 25);

    // The server end-host: the SMTP service listens on port 25.
    let mut mailhost = Daemon::bare(Host::new("mail-server", server_ip));
    let smtpd = Executable::new("/usr/sbin/smtpd", "smtpd", 4, "openbsd", "mail-server");
    let pid = mailhost.host_mut().spawn("mailsys", smtpd);
    mailhost.host_mut().listen(pid, IpProtocol::Tcp, 25);

    // In a deployment each daemon binds 0.0.0.0:783; the example uses
    // ephemeral localhost ports so it can run unprivileged.
    let laptop_server = DaemonServer::start(laptop, "127.0.0.1:0".parse().unwrap())
        .await
        .expect("bind laptop daemon server");
    let mail_server = DaemonServer::start(mailhost, "127.0.0.1:0".parse().unwrap())
        .await
        .expect("bind mail daemon server");
    println!("laptop daemon listening on {}", laptop_server.local_addr());
    println!("mail   daemon listening on {}", mail_server.local_addr());

    // The controller: a PF+=2 policy over a TCP query plane that resolves
    // both flow ends concurrently under one 2 s budget.
    let policy = "block all\n\
                  pass all with eq(@src[name], thunderbird) with eq(@src[userID], alice) \
                  with eq(@dst[name], smtpd) keep state\n";
    let backend = NetworkBackend::new()
        .with_budget(Duration::from_secs(2))
        .with_endpoint(laptop_ip, laptop_server.local_addr())
        .with_endpoint(server_ip, mail_server.local_addr());
    let mut controller = IdentxxController::new(
        ControllerConfig::new().with_control_file("00-mail.control", policy),
    )
    .expect("compile policy")
    .with_backend(Box::new(backend));

    // The full flow-setup decision, over real sockets.
    let started = Instant::now();
    let decision = controller.decide(&flow, 0);
    let elapsed = started.elapsed();
    println!("\nflow {flow}");
    for (side, response) in [
        ("@src", decision.src_response.as_ref()),
        ("@dst", decision.dst_response.as_ref()),
    ] {
        let Some(response) = response else {
            println!("  {side}: (no response)");
            continue;
        };
        println!("  {side}:");
        for section in response.sections() {
            println!("    --- section ---");
            for pair in section.pairs() {
                println!("    {}: {}", pair.key, pair.value);
            }
        }
    }
    println!(
        "\nverdict: {:?} (matched line {:?}, {} concurrent queries, {:?} wall time)",
        decision.verdict.decision, decision.verdict.matched_line, decision.queries_issued, elapsed
    );

    // The repeat decision hits the controller's state table: zero queries.
    let cached = controller.decide(&flow, 10);
    println!(
        "repeat decision: {:?} (from_cache: {}, queries: {})",
        cached.verdict.decision, cached.from_cache, cached.queries_issued
    );
    let stats = controller.backend_stats();
    println!(
        "backend stats: {} sent / {} answered / {} unanswered",
        stats.queries_sent, stats.responses_received, stats.timeouts
    );

    laptop_server.shutdown();
    mail_server.shutdown();
}
