//! The deployment-shaped transport: an ident++ daemon served over a real TCP
//! socket (tokio) and a controller-side client querying it, exactly as a
//! firewall would query port 783 on an end-host.
//!
//! Run with: `cargo run --example live_daemon`

use identxx::daemon::Daemon;
use identxx::hostmodel::{Executable, Host};
use identxx::net::{query_daemon, DaemonServer};
use identxx::prelude::*;

#[tokio::main(flavor = "current_thread")]
async fn main() {
    // The end-host: alice runs thunderbird toward a mail server.
    let mut daemon = Daemon::bare(Host::new("laptop-alice", Ipv4Addr::new(10, 0, 0, 7)));
    let thunderbird = Executable::new(
        "/usr/bin/thunderbird",
        "thunderbird",
        78,
        "mozilla",
        "email-client",
    );
    let flow = daemon.host_mut().open_connection(
        "alice",
        thunderbird,
        40123,
        Ipv4Addr::new(10, 0, 0, 25),
        25,
    );

    // In a deployment the daemon binds 0.0.0.0:783; the example uses an
    // ephemeral localhost port so it can run unprivileged.
    let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .expect("bind daemon server");
    println!("ident++ daemon listening on {}", server.local_addr());

    // The controller side: query the daemon about the flow.
    let query = Query::new(flow)
        .with_key(well_known::USER_ID)
        .with_key(well_known::APP_NAME)
        .with_key(well_known::EXE_HASH);
    let response = query_daemon(server.local_addr(), query)
        .await
        .expect("query should not error")
        .expect("daemon should answer");

    println!("response for {flow}:");
    for section in response.sections() {
        println!("  --- section ---");
        for pair in section.pairs() {
            println!("  {}: {}", pair.key, pair.value);
        }
    }

    // Feed the response into a PF+=2 policy, exactly as the controller would.
    let policy = parse_ruleset(
        "block all\npass all with eq(@src[name], thunderbird) with eq(@src[userID], alice)\n",
    )
    .unwrap();
    let verdict = EvalContext::new(&policy)
        .with_src_response(&response)
        .evaluate(&flow);
    println!("\npolicy verdict for the flow: {:?}", verdict.decision);

    server.shutdown();
}
