//! Quickstart: build an ident++-protected enterprise, write an
//! application-identity policy no port-based firewall can express, and watch
//! the flow-setup sequence of Fig. 1 happen.
//!
//! Run with: `cargo run --example quickstart`

use identxx::prelude::*;

fn main() {
    // The administrator's policy: default deny, allow web browsing by actual
    // browsers, and Skype only when *both* ends really run Skype. Note there
    // is not a single port number in this policy.
    let policy = "\
block all
pass all with eq(@src[name], firefox) keep state
pass all with eq(@src[name], skype) with eq(@dst[name], skype) keep state
";

    let mut net = EnterpriseNetwork::star(8, policy).expect("policy should parse");
    let hosts = net.host_addrs();
    println!(
        "enterprise with {} hosts behind one OpenFlow switch",
        hosts.len()
    );
    println!("policy:\n{policy}");

    // alice browses the web from hosts[0] to a server on hosts[1].
    let browse = net.start_app(hosts[0], hosts[1], 80, "alice", firefox_app());
    let outcome = net.deliver_first_packet(&browse, 0);
    println!(
        "firefox {:>}  decision={:?} queries={} entries_installed={} delivered={}",
        browse,
        outcome.decision.unwrap(),
        outcome.queries_issued,
        outcome.entries_installed,
        outcome.delivered
    );

    // Skype disguises itself on port 80 toward a host that does NOT run skype.
    let sneaky = net.start_app(hosts[2], hosts[1], 80, "bob", skype_app(210));
    let outcome = net.deliver_first_packet(&sneaky, 10);
    println!(
        "skype   {:>}  decision={:?} delivered={}   <- same port as the browser, different fate",
        sneaky,
        outcome.decision.unwrap(),
        outcome.delivered
    );

    // Skype to a real skype peer is fine.
    net.run_service(hosts[3], "carol", skype_app(210), 34000);
    let voip = net.start_app(hosts[2], hosts[3], 34000, "bob", skype_app(210));
    let outcome = net.deliver_first_packet(&voip, 20);
    println!(
        "skype   {:>}  decision={:?} delivered={}",
        voip,
        outcome.decision.unwrap(),
        outcome.delivered
    );

    // The timed Fig. 1 flow-setup sequence for a brand-new flow.
    let fresh = net.start_app(hosts[4], hosts[5], 80, "dave", firefox_app());
    let report = net
        .simulate_flow_setup(&fresh)
        .expect("flow endpoints are known");
    println!(
        "\nflow setup (Fig. 1): {} switches on path, setup latency {}us, cached latency {}us ({}x), \
         {} ident++ messages, {} OpenFlow messages",
        report.path_switches,
        report.setup_latency_us,
        report.cached_latency_us,
        report.setup_overhead().round(),
        report.ident_exchanges,
        report.openflow_messages
    );

    // The audit log shows who did what — the basis for supervised delegation.
    println!(
        "\naudit log ({} decisions):",
        net.controller().audit().len()
    );
    for record in net.controller().audit().records() {
        println!(
            "  t={:<6} {:<40} {:?} (user={:?} app={:?} cache={})",
            record.time,
            record.flow.to_string(),
            record.decision,
            record.src_user.as_deref().unwrap_or("-"),
            record.src_app.as_deref().unwrap_or("-"),
            record.from_cache
        );
    }
}
