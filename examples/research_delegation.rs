//! Figures 4–5 (delegation to users) and Figures 6–7 (trust delegation to the
//! "Secur" third party): researchers and third parties publish signed
//! per-application rules; the controller enforces them only when the
//! signatures check out against keys the administrator trusts.
//!
//! Run with: `cargo run --example research_delegation`

use identxx::core::figures::{figure45_research, figure67_secur};
use identxx::core::scenario::render_table;

fn main() {
    let mut all_ok = true;
    for scenario in [figure45_research(), figure67_secur()] {
        println!("{}", scenario.name);
        println!("{}", render_table(&scenario.flows));
        let maker_flows = scenario
            .network
            .controller()
            .audit()
            .by_rule_maker("Secur")
            .count();
        if maker_flows > 0 {
            println!("  ({maker_flows} decisions relied on rules published by Secur)");
        }
        if !scenario.all_match() {
            all_ok = false;
        }
        println!();
    }
    if all_ok {
        println!("both delegation scenarios match the paper.");
    } else {
        println!("MISMATCH against the paper — see the tables above.");
        std::process::exit(1);
    }
}
