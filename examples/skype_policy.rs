//! Figures 2–3 of the paper: the three-file Skype policy
//! (`00-local-header.control`, `50-skype.control`, `99-local-footer.control`)
//! and the Skype daemon configuration, executed end to end.
//!
//! Run with: `cargo run --example skype_policy`

use identxx::core::figures::figure2_skype;
use identxx::core::scenario::render_table;

fn main() {
    let scenario = figure2_skype();
    println!("{}", scenario.name);
    println!("{}", render_table(&scenario.flows));
    println!(
        "controller evaluated {} flows, {} allowed, {} blocked",
        scenario.network.controller().audit().len(),
        scenario.network.controller().audit().passed().count(),
        scenario.network.controller().audit().blocked().count()
    );
    if scenario.all_match() {
        println!("every decision matches the behaviour described in the paper.");
    } else {
        println!("MISMATCH against the paper — see the table above.");
        std::process::exit(1);
    }
}
