//! # identxx — a reproduction of "Delegating Network Security with More Information"
//!
//! This is the umbrella crate of the workspace: it re-exports every component
//! of the ident++ reproduction (Naous, Stutsman, Mazières, McKeown, Zeldovich —
//! WREN/SIGCOMM 2009) so applications can depend on a single crate.
//!
//! * [`proto`] — the ident++ query/response wire protocol,
//! * [`crypto`] — hashing and the toy signature scheme behind `verify`,
//! * [`pf`] — the PF+=2 policy language (lexer, parser, evaluator, state),
//! * [`netsim`] — the discrete-event network simulation substrate,
//! * [`openflow`] — the OpenFlow-style switching substrate,
//! * [`hostmodel`] — simulated end-hosts (users, processes, sockets, configs),
//! * [`daemon`] — the end-host ident++ daemon,
//! * [`controller`] — the ident++ OpenFlow controller,
//! * [`baselines`] — vanilla firewall / Ethane / distributed-firewall
//!   comparison points,
//! * [`net`] — the tokio TCP transport for the wire protocol,
//! * [`core`] — the high-level [`core::EnterpriseNetwork`] API and the
//!   executable reproductions of the paper's Figures 2–8.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! substitutions, and `EXPERIMENTS.md` for the experiment index and results.

pub use identxx_baselines as baselines;
pub use identxx_controller as controller;
pub use identxx_core as core;
pub use identxx_crypto as crypto;
pub use identxx_daemon as daemon;
pub use identxx_hostmodel as hostmodel;
pub use identxx_net as net;
pub use identxx_netsim as netsim;
pub use identxx_openflow as openflow;
pub use identxx_pf as pf;
pub use identxx_proto as proto;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use identxx_core::prelude::*;
}

/// Runs every fenced Rust block in `README.md` as a doctest, so the
/// README's quickstart snippets can never drift from the real API.
#[cfg(doctest)]
mod readme_doctests {
    #[doc = include_str!("../README.md")]
    struct ReadmeDoctests;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_high_level_api() {
        use crate::prelude::*;
        let policy = "block all\npass all with eq(@src[name], firefox) keep state\n";
        let net = EnterpriseNetwork::star(3, policy).unwrap();
        assert_eq!(net.host_addrs().len(), 3);
    }
}
