//! Backend equivalence: the `InProcessBackend` (simulator) and the
//! `NetworkBackend` (loopback TCP daemons) must produce identical
//! `FlowDecision` verdicts, query counts, and transport stats for the same
//! scenario — including silent, refusing, and unreachable daemons. This is
//! the contract that makes the simulator's results transferable to the
//! deployment-shaped transport.

use std::time::Duration;

use identxx::daemon::Daemon;
use identxx::hostmodel::{Executable, Host};
use identxx::net::DaemonServer;
use identxx::prelude::*;

const POLICY: &str = "\
block all
pass all with eq(@src[name], firefox) keep state
pass all with eq(@src[name], skype) with eq(@dst[name], skype) keep state
";

fn firefox() -> Executable {
    Executable::new("/usr/bin/firefox", "firefox", 300, "mozilla", "browser")
}

fn skype() -> Executable {
    Executable::new("/usr/bin/skype", "skype", 210, "skype.com", "voip")
}

struct Scenario {
    /// The daemons, staged identically for both backends.
    daemons: Vec<Daemon>,
    /// The flows to decide, in order (some repeat to exercise the cache).
    flows: Vec<FiveTuple>,
}

/// Builds the shared scenario:
///
/// * h1 (10.0.0.1): alice runs firefox and skype — answers normally,
/// * h2 (10.0.0.2): bob runs a listening skype — answers normally,
/// * h3 (10.0.0.3): silent daemon (no ident++ support),
/// * h4 (10.0.0.4): daemon exists but is unreachable (unregistered
///   in-process; dead TCP endpoint over the network),
/// * 192.168.9.9: no daemon at all (refused / unknown host).
fn scenario() -> Scenario {
    let h1 = Ipv4Addr::new(10, 0, 0, 1);
    let h2 = Ipv4Addr::new(10, 0, 0, 2);
    let h3 = Ipv4Addr::new(10, 0, 0, 3);
    let h4 = Ipv4Addr::new(10, 0, 0, 4);

    let mut d1 = Daemon::bare(Host::new("h1", h1));
    let firefox_flow = d1
        .host_mut()
        .open_connection("alice", firefox(), 41000, h2, 80);
    let skype_flow = d1
        .host_mut()
        .open_connection("alice", skype(), 41001, h2, 34000);
    let to_silent = d1
        .host_mut()
        .open_connection("alice", skype(), 41002, h3, 34000);

    let mut d2 = Daemon::bare(Host::new("h2", h2));
    let pid = d2.host_mut().spawn("bob", skype());
    d2.host_mut().listen(pid, IpProtocol::Tcp, 34000);

    let mut d3 = Daemon::bare(Host::new("h3", h3));
    d3.set_silent(true);
    // A flow *from* the silent host: its daemon would know the answer but
    // never gives it.
    let from_silent = FiveTuple::tcp(h3, 41003, h2, 80);

    let d4 = Daemon::bare(Host::new("h4", h4));
    let to_unreachable = FiveTuple::tcp(h1, 41004, h4, 80);

    let stranger = FiveTuple::tcp([192, 168, 9, 9], 1234, h2, 80);

    Scenario {
        daemons: vec![d1, d2, d3, d4],
        flows: vec![
            firefox_flow,
            firefox_flow, // repeat: cache hit, zero queries
            skype_flow,   // needs both ends
            to_silent,    // destination never answers
            from_silent,  // source never answers → fail closed
            to_unreachable,
            stranger,
            skype_flow, // repeat after other traffic: still cached
        ],
    }
}

/// Collapses a decision to its comparable facts.
fn digest(d: &FlowDecision) -> (Decision, Option<usize>, bool, u32, bool, bool) {
    (
        d.verdict.decision,
        d.verdict.matched_line,
        d.from_cache,
        d.queries_issued,
        d.src_response.is_some(),
        d.dst_response.is_some(),
    )
}

#[tokio::test]
async fn in_process_and_network_backends_decide_identically() {
    let scenario_a = scenario();
    let scenario_b = scenario();

    // In-process controller: daemons registered directly.
    let config = ControllerConfig::new().with_control_file("00.control", POLICY);
    let mut in_process = IdentxxController::new(config.clone()).unwrap();
    for daemon in scenario_a.daemons {
        // h4 stays unregistered: the unreachable-host case.
        if daemon.host().addr != Ipv4Addr::new(10, 0, 0, 4) {
            in_process.register_daemon(daemon);
        }
    }

    // Network controller: the same daemons behind loopback TCP servers. h4's
    // endpoint points at a port nothing listens on (server started, address
    // taken, then shut down) — the wire-level unreachable host.
    let mut servers = Vec::new();
    let mut backend = NetworkBackend::new().with_budget(Duration::from_millis(500));
    for daemon in scenario_b.daemons {
        let addr = daemon.host().addr;
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        backend.register_endpoint(addr, server.local_addr());
        if addr == Ipv4Addr::new(10, 0, 0, 4) {
            server.shutdown(); // leaves a dead endpoint behind
        } else {
            servers.push(server);
        }
    }
    let mut network = IdentxxController::new(config)
        .unwrap()
        .with_backend(Box::new(backend));

    for (i, flow) in scenario_a.flows.iter().enumerate() {
        let now = (i as u64) * 10;
        let a = in_process.decide(flow, now);
        let b = network.decide(flow, now);
        assert_eq!(
            digest(&a),
            digest(&b),
            "decision {i} diverged between backends for {flow}"
        );
    }

    // The transports did the same amount of work…
    assert_eq!(in_process.backend_stats(), network.backend_stats());
    // …and recorded the same audit trail.
    assert_eq!(in_process.audit().len(), network.audit().len());
    for (a, b) in in_process
        .audit()
        .records()
        .iter()
        .zip(network.audit().records())
    {
        assert_eq!(a, b, "audit records diverged between backends");
    }

    for server in servers {
        server.shutdown();
    }
}

/// Fail-closed mode is transport-independent: with
/// `fail_closed_on_unanswered` set, the in-process and network controllers
/// still decide identically over the whole scenario — silent, unreachable,
/// and unknown hosts all produce the explicit fail-closed deny (no matched
/// line, never cached) plus a `fail-closed` policy note, on both
/// transports.
#[tokio::test]
async fn fail_closed_is_equivalent_across_backends() {
    let scenario_a = scenario();
    let scenario_b = scenario();

    let config = ControllerConfig::new()
        .with_control_file("00.control", POLICY)
        .with_fail_closed_on_unanswered();
    let mut in_process = IdentxxController::new(config.clone()).unwrap();
    for daemon in scenario_a.daemons {
        if daemon.host().addr != Ipv4Addr::new(10, 0, 0, 4) {
            in_process.register_daemon(daemon);
        }
    }

    let mut servers = Vec::new();
    let mut backend = NetworkBackend::new().with_budget(Duration::from_millis(500));
    for daemon in scenario_b.daemons {
        let addr = daemon.host().addr;
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        backend.register_endpoint(addr, server.local_addr());
        if addr == Ipv4Addr::new(10, 0, 0, 4) {
            server.shutdown();
        } else {
            servers.push(server);
        }
    }
    let mut network = IdentxxController::new(config)
        .unwrap()
        .with_backend(Box::new(backend));

    let flows = scenario().flows;
    for (i, flow) in flows.iter().enumerate() {
        let now = (i as u64) * 10;
        let a = in_process.decide(flow, now);
        let b = network.decide(flow, now);
        assert_eq!(
            digest(&a),
            digest(&b),
            "fail-closed decision {i} diverged between backends for {flow}"
        );
    }
    assert_eq!(in_process.backend_stats(), network.backend_stats());
    assert_eq!(in_process.audit().records(), network.audit().records());

    // The silent-source flow is the canonical fail-closed case: denied with
    // no matched line, explained by a policy note, on both transports.
    let from_silent = flows[4];
    for controller in [&in_process, &network] {
        let record = controller
            .audit()
            .records()
            .iter()
            .find(|r| r.flow == from_silent)
            .expect("the silent-source flow is audited");
        assert_eq!(record.decision, Decision::Block);
        assert_eq!(record.matched_line, None);
        assert!(!controller.state_table().contains(&from_silent, 0));
        assert!(controller
            .audit()
            .policy_notes()
            .iter()
            .any(|n| n.category == "fail-closed"));
    }
    assert_eq!(
        in_process
            .audit()
            .policy_notes()
            .iter()
            .filter(|n| n.category == "fail-closed")
            .count(),
        network
            .audit()
            .policy_notes()
            .iter()
            .filter(|n| n.category == "fail-closed")
            .count(),
        "both transports must fail closed for exactly the same flows"
    );

    for server in servers {
        server.shutdown();
    }
}

/// A half-answered `QUERY-BATCH` frame: one frame carries answers for only
/// part of the round — here because a drill [`FaultPlan`] drops one of the
/// two answers h1 owes (a daemon answers host-level even for flows it cannot
/// attribute to a process, so an *omitted* answer is a fault, not a lookup
/// miss). The fully answered flow decides normally; the flow whose answer
/// vanished fails closed with an audit note — never a hang, never a guess.
#[tokio::test]
async fn half_answered_batch_frame_fails_closed_for_the_missing_flow() {
    let h1 = Ipv4Addr::new(10, 0, 0, 1);
    let h2 = Ipv4Addr::new(10, 0, 0, 2);
    let scenario_b = scenario();
    let known_skype = scenario_b.flows[2];
    // A second flow between the same hosts, so both source queries travel in
    // the one batch frame to h1.
    let probed = FiveTuple::tcp(h1, 49_999, h2, 34_000);

    // Seed 3 is chosen so the one-in-two drop draw keeps the frame's first
    // answer (the skype flow) and drops its second (the probed flow): h1's
    // `RESPONSE-BATCH` is genuinely half-answered.
    let injector = FaultPlan::new(3)
        .drop_responses(h1, 2, Window::always())
        .injector();

    let mut servers = Vec::new();
    let mut backend = NetworkBackend::new().with_budget(Duration::from_millis(500));
    for mut daemon in scenario_b.daemons {
        let addr = daemon.host().addr;
        if addr != h1 && addr != h2 {
            continue;
        }
        if addr == h1 {
            daemon.set_fault_injector(Some(injector.clone()));
        }
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        backend.register_endpoint(addr, server.local_addr());
        servers.push(server);
    }
    let config = ControllerConfig::new()
        .with_control_file("00.control", POLICY)
        .with_fail_closed_on_unanswered();
    let mut controller = IdentxxController::new(config)
        .unwrap()
        .with_backend(Box::new(backend));

    let decisions = controller.decide_batch(&[known_skype, probed], 0);
    assert!(
        decisions[0].is_pass(),
        "the fully answered flow decides normally"
    );
    assert_eq!(decisions[1].verdict.decision, Decision::Block);
    assert_eq!(decisions[1].verdict.matched_line, None);
    assert!(
        decisions[1].src_response.is_none() && decisions[1].dst_response.is_some(),
        "exactly the dropped half of the frame is missing"
    );
    assert!(controller
        .audit()
        .policy_notes()
        .iter()
        .any(|n| n.category == "fail-closed"));
    assert!(!controller.state_table().contains(&probed, 0));

    for server in servers {
        server.shutdown();
    }
}

/// An open circuit breaker fails closed too: after the configured run of
/// deadline misses the backend stops dialing the host, and the controller
/// turns the unobtainable answer into an audited deny — bounded latency,
/// no guessing, and the deny is never cached so recovery is immediate once
/// the breaker re-closes.
#[tokio::test]
async fn breaker_open_decisions_fail_closed_with_an_audit_note() {
    let h2 = Ipv4Addr::new(10, 0, 0, 2);
    let h3 = Ipv4Addr::new(10, 0, 0, 3);
    let mut silent = Daemon::bare(Host::new("h3", h3));
    silent.set_silent(true);
    let listener = {
        let mut d = Daemon::bare(Host::new("h2", h2));
        let pid = d.host_mut().spawn("bob", skype());
        d.host_mut().listen(pid, IpProtocol::Tcp, 34000);
        d
    };

    let silent_server = DaemonServer::start(silent, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let listener_server = DaemonServer::start(listener, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let mut backend = NetworkBackend::new()
        .with_budget(Duration::from_millis(300))
        .with_breaker(BreakerConfig {
            failure_threshold: 2,
            cooldown_rounds: 4,
        });
    backend.register_endpoint(h3, silent_server.local_addr());
    backend.register_endpoint(h2, listener_server.local_addr());

    let config = ControllerConfig::new()
        .with_control_file("00.control", POLICY)
        .with_fail_closed_on_unanswered();
    let mut controller = IdentxxController::new(config)
        .unwrap()
        .with_backend(Box::new(backend));

    // Two rounds of deadline misses trip the breaker…
    for round in 0u64..2 {
        let flow = FiveTuple::tcp(h3, 42_000 + round as u16, h2, 34000);
        let decision = controller.decide(&flow, round * 10);
        assert_eq!(decision.verdict.decision, Decision::Block);
        assert_eq!(decision.verdict.matched_line, None);
    }
    let breaker_open = |c: &IdentxxController| {
        c.backend()
            .as_any()
            .downcast_ref::<NetworkBackend>()
            .unwrap()
            .breaker_is_open(h3)
    };
    assert!(
        breaker_open(&controller),
        "two consecutive misses must open the breaker"
    );

    // …and while it is open the host is never dialed: the decision is an
    // immediate fail-closed deny, audited like every other.
    let served_before = silent_server.queries_served();
    let flow = FiveTuple::tcp(h3, 42_100, h2, 34000);
    let decision = controller.decide(&flow, 100);
    assert_eq!(decision.verdict.decision, Decision::Block);
    assert_eq!(decision.verdict.matched_line, None);
    assert_eq!(
        silent_server.queries_served(),
        served_before,
        "an open breaker must not dial the host"
    );
    assert!(controller
        .audit()
        .policy_notes()
        .iter()
        .any(|n| n.category == "fail-closed"));
    assert!(!controller.state_table().contains(&flow, 100));

    silent_server.shutdown();
    listener_server.shutdown();
}

#[tokio::test]
async fn recording_backend_matches_in_process_for_scripted_hosts() {
    // The test double obeys the same contract: scripted answers stand in for
    // live daemons, silence for silent ones, absence for unreachable ones —
    // and the decision digests match the in-process truth.
    let h1 = Ipv4Addr::new(10, 0, 0, 1);
    let h2 = Ipv4Addr::new(10, 0, 0, 2);
    let h3 = Ipv4Addr::new(10, 0, 0, 3);
    let config = ControllerConfig::new().with_control_file("00.control", POLICY);

    let mut in_process = IdentxxController::new(config.clone()).unwrap();
    let mut d1 = Daemon::bare(Host::new("h1", h1));
    let flow = d1
        .host_mut()
        .open_connection("alice", firefox(), 41000, h2, 80);
    in_process.register_daemon(d1);
    let mut d3 = Daemon::bare(Host::new("h3", h3));
    d3.set_silent(true);
    in_process.register_daemon(d3);

    let recording = RecordingBackend::new()
        .with_answer(h1, vec![("name".to_string(), "firefox".to_string())])
        .with_silent(h3);
    let mut recorded = IdentxxController::new(config)
        .unwrap()
        .with_backend(Box::new(recording));

    let silent_flow = FiveTuple::tcp(h3, 41001, h1, 80);
    for (i, f) in [flow, silent_flow].iter().enumerate() {
        let a = in_process.decide(f, i as u64);
        let b = recorded.decide(f, i as u64);
        assert_eq!(a.verdict.decision, b.verdict.decision);
        assert_eq!(a.queries_issued, b.queries_issued);
        assert_eq!(a.from_cache, b.from_cache);
    }
    assert_eq!(in_process.backend_stats(), recorded.backend_stats());

    // The recording backend additionally proves *what* the controller asked:
    // both ends, with the default key hints.
    let log = recorded
        .backend()
        .as_any()
        .downcast_ref::<RecordingBackend>()
        .unwrap()
        .recorded()
        .to_vec();
    assert_eq!(log.len(), 2);
    assert_eq!(
        log[0].targets,
        vec![QueryTarget::Source, QueryTarget::Destination]
    );
    assert!(log[0].keys.contains(&well_known::USER_ID.to_string()));
    assert!(log[0].keys.contains(&well_known::REQUIREMENTS.to_string()));
}

#[tokio::test]
async fn batched_rounds_decide_identically_across_backends() {
    // The same scenario decided in batched query rounds: the in-process
    // backend (default loop) and the network backend (per-host QUERY-BATCH
    // frames over pooled connections) must match the sequential in-process
    // reference decision for decision, stats, and audit alike.
    let reference_scenario = scenario();
    let scenario_a = scenario();
    let scenario_b = scenario();
    let config = ControllerConfig::new().with_control_file("00.control", POLICY);

    let build_in_process = |daemons: Vec<Daemon>| {
        let mut controller = IdentxxController::new(config.clone()).unwrap();
        for daemon in daemons {
            if daemon.host().addr != Ipv4Addr::new(10, 0, 0, 4) {
                controller.register_daemon(daemon);
            }
        }
        controller
    };
    let mut reference = build_in_process(reference_scenario.daemons);
    let mut in_process = build_in_process(scenario_a.daemons);

    let mut servers = Vec::new();
    let mut backend = NetworkBackend::new().with_budget(Duration::from_millis(500));
    for daemon in scenario_b.daemons {
        let addr = daemon.host().addr;
        let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
            .await
            .unwrap();
        backend.register_endpoint(addr, server.local_addr());
        if addr == Ipv4Addr::new(10, 0, 0, 4) {
            server.shutdown();
        } else {
            servers.push(server);
        }
    }
    let mut network = IdentxxController::new(config)
        .unwrap()
        .with_backend(Box::new(backend));

    // Rounds chosen so no flow repeats within a round (the one documented
    // batch-vs-sequential divergence); repeats across rounds still hit the
    // cache exactly as they would sequentially.
    let flows = &reference_scenario.flows;
    let rounds: [&[FiveTuple]; 4] = [&flows[0..1], &flows[1..3], &flows[3..6], &flows[6..8]];
    let mut flow_index = 0usize;
    for round in rounds {
        let now = (flow_index as u64) * 10;
        let a = in_process.decide_batch(round, now);
        let b = network.decide_batch(round, now);
        for (i, flow) in round.iter().enumerate() {
            let r = reference.decide(flow, now);
            assert_eq!(
                digest(&r),
                digest(&a[i]),
                "in-process batch diverged from sequential for {flow}"
            );
            assert_eq!(
                digest(&r),
                digest(&b[i]),
                "network batch diverged from sequential for {flow}"
            );
        }
        flow_index += round.len();
    }

    assert_eq!(reference.backend_stats(), in_process.backend_stats());
    assert_eq!(in_process.backend_stats(), network.backend_stats());
    assert_eq!(in_process.audit().records(), network.audit().records());

    for server in servers {
        server.shutdown();
    }
}
