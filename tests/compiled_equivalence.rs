//! Property test: the compiled PF+=2 evaluator is decision-equivalent to the
//! AST interpreter — **three ways**.
//!
//! Randomized rule sets (tables, macros, dicts, protocol constraints,
//! negated endpoints, named/numeric/range ports, the full predicate
//! vocabulary, `quick` and `keep state`) are evaluated over randomized flows
//! and responses through `EvalContext` (the reference oracle),
//! `CompiledPolicy::evaluate_linear` (the compiled ordered scan), and
//! `CompiledPolicy::evaluate` (the field-indexed matcher tree). Every field
//! of the verdict except `rules_evaluated` must agree across all three —
//! the compiled paths are allowed (indeed, expected) to examine fewer
//! rules, but never to decide differently or attribute the decision to a
//! different rule.
//!
//! A second generator skews toward what the matcher tree actually indexes:
//! policies heavy in hash-dispatchable discriminators (exact dst ports,
//! exact hosts, `eq(@src[k], lit)` literals, host-set membership, `proto`),
//! with `quick` rules, duplicate/overlapping discriminators, and rules
//! straddling several root dispatch dimensions at once.

use proptest::prelude::*;

use identxx::pf::{parse_ruleset, EvalContext, PolicyCompiler};
use identxx::proto::{FiveTuple, IpProtocol, Ipv4Addr, Response, Section};

/// A small address pool so random endpoints and random flows actually
/// collide: mixed hosts inside and outside the generated tables/CIDRs.
const ADDRS: [[u8; 4]; 6] = [
    [192, 168, 0, 10],
    [192, 168, 0, 77],
    [192, 168, 1, 1],
    [10, 0, 0, 5],
    [10, 9, 9, 9],
    [8, 8, 8, 8],
];

/// Ports drawn so that `port 80`, `port http`, and `port 1000:2000` rules
/// all have both hits and misses.
const PORTS: [u16; 6] = [80, 443, 22, 1500, 2500, 7000];

/// Response values: app names, group lists, versions (numeric and not).
const VALUES: [&str; 8] = [
    "skype",
    "firefox",
    "resolver",
    "users wheel",
    "guests",
    "210",
    "150",
    "2.1.0",
];

const KEYS: [&str; 5] = ["name", "version", "groupID", "userID", "os-patch"];

fn arb_addr_token() -> impl Strategy<Value = String> {
    prop_oneof![
        (0usize..ADDRS.len()).prop_map(|i| {
            let a = ADDRS[i];
            format!("{}.{}.{}.{}", a[0], a[1], a[2], a[3])
        }),
        Just("192.168.0.0/24".to_string()),
        Just("10.0.0.0/8".to_string()),
    ]
}

/// One endpoint: `any`, a host/CIDR, or a table reference (sometimes to a
/// missing table), optionally negated, with an optional port constraint.
fn arb_endpoint() -> impl Strategy<Value = String> {
    let addr = prop_oneof![
        Just("any".to_string()),
        arb_addr_token(),
        Just("<lan>".to_string()),
        Just("<all>".to_string()),
        Just("<missing>".to_string()),
    ];
    let port = prop_oneof![
        Just(String::new()),
        Just(" port 80".to_string()),
        Just(" port http".to_string()),
        Just(" port nosuchservice".to_string()),
        Just(" port 1000:2000".to_string()),
    ];
    (any::<bool>(), addr, port).prop_map(|(negate, addr, port)| {
        let bang = if negate { "!" } else { "" };
        format!("{bang}{addr}{port}")
    })
}

fn arb_arg() -> impl Strategy<Value = String> {
    prop_oneof![
        (0usize..KEYS.len(), any::<bool>(), any::<bool>()).prop_map(|(k, dst, concat)| {
            let star = if concat { "*" } else { "" };
            let side = if dst { "dst" } else { "src" };
            format!("{star}@{side}[{}]", KEYS[k])
        }),
        (0usize..VALUES.len()).prop_map(|v| VALUES[v].to_string()),
        Just("$apps".to_string()),
        Just("$undefined".to_string()),
        Just("@meta[owner]".to_string()),
        Just("@meta[missing]".to_string()),
    ]
}

fn arb_predicate() -> impl Strategy<Value = String> {
    let cmp = (
        prop_oneof![
            Just("eq"),
            Just("ne"),
            Just("gt"),
            Just("lt"),
            Just("gte"),
            Just("lte"),
        ],
        arb_arg(),
        arb_arg(),
    )
        .prop_map(|(op, a, b)| format!("{op}({a}, {b})"));
    let exists = arb_arg().prop_map(|a| format!("exists({a})"));
    let member = (
        arb_arg(),
        prop_oneof![
            Just("$apps".to_string()),
            Just("users".to_string()),
            Just("lan".to_string()),
            arb_arg(),
        ],
    )
        .prop_map(|(v, l)| format!("member({v}, {l})"));
    let includes = (arb_arg(), arb_arg()).prop_map(|(h, n)| format!("includes({h}, {n})"));
    let bad = prop_oneof![
        Just("eq(@src[name])".to_string()),
        Just("frobnicate(@src[name])".to_string()),
    ];
    prop_oneof![cmp, exists, member, includes, bad]
}

fn arb_rule() -> impl Strategy<Value = String> {
    let proto = prop_oneof![
        Just(String::new()),
        Just(" proto tcp".to_string()),
        Just(" proto udp".to_string()),
        Just(" proto icmp".to_string()),
    ];
    let preds = prop::collection::vec(arb_predicate(), 0..3);
    (
        any::<bool>(),
        // Keep `quick` rare so most rule sets exercise last-match-wins.
        (0u8..10).prop_map(|q| q == 0),
        proto,
        prop_oneof![Just(None), (arb_endpoint(), arb_endpoint()).prop_map(Some)],
        preds,
        any::<bool>(),
    )
        .prop_map(|(pass, quick, proto, endpoints, preds, keep)| {
            let mut rule = String::from(if pass { "pass" } else { "block" });
            if quick {
                rule.push_str(" quick");
            }
            rule.push_str(&proto);
            match endpoints {
                None => rule.push_str(" all"),
                Some((from, to)) => {
                    rule.push_str(" from ");
                    rule.push_str(&from);
                    rule.push_str(" to ");
                    rule.push_str(&to);
                }
            }
            for pred in preds {
                rule.push_str(" with ");
                rule.push_str(&pred);
            }
            if keep {
                rule.push_str(" keep state");
            }
            rule
        })
}

fn arb_ruleset_text() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_rule(), 1..8).prop_map(|rules| {
        let mut text = String::from(
            "table <server> { 192.168.1.1 }\n\
             table <lan> { 192.168.0.0/24 }\n\
             table <all> { <lan> <server> <all> }\n\
             apps = \"{ skype firefox }\"\n\
             dict <meta> { owner : alice }\n",
        );
        for rule in rules {
            text.push_str(&rule);
            text.push('\n');
        }
        text
    })
}

fn arb_flow() -> impl Strategy<Value = FiveTuple> {
    (
        0usize..ADDRS.len(),
        0usize..ADDRS.len(),
        0usize..PORTS.len(),
        0usize..PORTS.len(),
        prop_oneof![
            Just(IpProtocol::Tcp),
            Just(IpProtocol::Udp),
            Just(IpProtocol::Icmp),
            Just(IpProtocol::Other(47)),
        ],
    )
        .prop_map(|(s, d, sp, dp, proto)| {
            FiveTuple::new(
                Ipv4Addr::from(ADDRS[s]),
                PORTS[sp],
                Ipv4Addr::from(ADDRS[d]),
                PORTS[dp],
                proto,
            )
        })
}

/// A response: 0–2 sections of random key/value pairs (two sections exercise
/// `latest` vs `*`-concatenation), or no response at all.
fn arb_response(flow: FiveTuple) -> impl Strategy<Value = Option<Response>> {
    let section = prop::collection::vec((0usize..KEYS.len(), 0usize..VALUES.len()), 1..4);
    prop_oneof![
        Just(None),
        prop::collection::vec(section, 0..3).prop_map(move |sections| {
            let mut response = Response::new(flow);
            for pairs in sections {
                let mut s = Section::new();
                for (k, v) in pairs {
                    s.push(KEYS[k], VALUES[v]);
                }
                response.push_section(s);
            }
            Some(response)
        }),
    ]
}

// ---------------------------------------------------------------------------
// Dispatch-heavy generator: what the matcher tree actually indexes
// ---------------------------------------------------------------------------

/// Ports drawn from a pool of 3 so many rules share a discriminator (the
/// tree's per-port leaf lists grow past one entry), plus a narrow range that
/// expands into per-port entries and a wide one that stays residual.
fn arb_dispatch_rule() -> impl Strategy<Value = String> {
    let action = prop_oneof![Just("pass"), Just("block")];
    // More frequent `quick` than the general generator: quick-stops inside
    // hash-dispatched leaf lists are exactly what first-match preservation
    // has to get right.
    let quick = (0u8..5).prop_map(|q| q == 0);
    // The vendored strategy combinators are not `Clone`; rebuild on demand.
    let host = || {
        (0usize..ADDRS.len()).prop_map(|i| {
            let a = ADDRS[i];
            format!("{}.{}.{}.{}", a[0], a[1], a[2], a[3])
        })
    };
    let shape = prop_oneof![
        // Port-dispatched, duplicated across rules (3-port pool).
        prop_oneof![Just(80u16), Just(443), Just(7000)]
            .prop_map(|p| format!(" from any to any port {p}")),
        // Narrow range: expanded into per-port table entries.
        Just(" from any to any port 440:445".to_string()),
        // Wide range: falls through to the residual list.
        Just(" from any to any port 1000:2000".to_string()),
        // Host-dispatched (dst, src), sometimes straddling a port too —
        // the rule sits in ONE leaf but carries both constraints.
        host().prop_map(|h| format!(" from any to {h}")),
        host().prop_map(|h| format!(" from {h} to any")),
        (host(), prop_oneof![Just(80u16), Just(443)])
            .prop_map(|(h, p)| format!(" from {h} to any port {p}")),
        // Set-membership groups (shared FlatSet test) and CIDR groups.
        Just(" from <lan> to any".to_string()),
        Just(" from any to <all>".to_string()),
        Just(" from 10.0.0.0/8 to any".to_string()),
        // Unconstrained (residual or proto/resp dispatched below).
        Just(" all".to_string()),
    ];
    // The vendored `prop_oneof!` has no weight syntax; duplicate entries to
    // bias the uniform union (4:1:1 no-proto, 3:1:1 no-resp).
    let proto = prop_oneof![
        Just(String::new()),
        Just(String::new()),
        Just(String::new()),
        Just(String::new()),
        Just(" proto tcp".to_string()),
        Just(" proto udp".to_string()),
    ];
    // Response-literal dispatch: a pool of 4 values over 2 keys, so tables
    // fill with duplicate literals and flows hit/miss realistically.
    let resp = prop_oneof![
        Just(String::new()),
        Just(String::new()),
        Just(String::new()),
        (0usize..4usize, any::<bool>()).prop_map(|(v, dst)| {
            let side = if dst { "dst" } else { "src" };
            format!(" with eq(@{side}[name], {})", VALUES[v])
        }),
        Just(" with member(@src[groupID], wheel)".to_string()),
    ];
    (action, quick, proto, shape, resp, any::<bool>()).prop_map(
        |(action, quick, proto, shape, resp, keep)| {
            let mut rule = String::from(action);
            if quick {
                rule.push_str(" quick");
            }
            rule.push_str(&proto);
            rule.push_str(&shape);
            rule.push_str(&resp);
            if keep {
                rule.push_str(" keep state");
            }
            rule
        },
    )
}

/// Longer rule lists than the general generator (up to 40 rules) so leaf
/// lists hold many positions and the min-index merge is genuinely k-way.
fn arb_dispatch_ruleset_text() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_dispatch_rule(), 1..40).prop_map(|rules| {
        let mut text = String::from(
            "table <server> { 192.168.1.1 }\n\
             table <lan> { 192.168.0.0/24 }\n\
             table <all> { <lan> <server> <all> }\n",
        );
        for rule in rules {
            text.push_str(&rule);
            text.push('\n');
        }
        text
    })
}

/// Runs one flow through all three evaluation paths and asserts the verdicts
/// agree on every field except `rules_evaluated`.
fn assert_three_way(
    text: &str,
    flow: &FiveTuple,
    src: Option<&Response>,
    dst: Option<&Response>,
) -> Result<(), TestCaseError> {
    let ruleset = parse_ruleset(text).unwrap();
    let mut ctx = EvalContext::new(&ruleset).with_named_list("users", vec!["users".to_string()]);
    if let Some(src) = src {
        ctx = ctx.with_src_response(src);
    }
    if let Some(dst) = dst {
        ctx = ctx.with_dst_response(dst);
    }
    let interpreted = ctx.evaluate(flow);

    let policy = PolicyCompiler::new()
        .with_named_list("users", vec!["users".to_string()])
        .compile(&ruleset);
    let linear = policy.evaluate_linear(flow, src, dst);
    let tree = policy.evaluate(flow, src, dst);

    for (name, compiled) in [("linear", &linear), ("tree", &tree)] {
        prop_assert_eq!(
            compiled.decision,
            interpreted.decision,
            "{} ruleset:\n{}",
            name,
            text
        );
        prop_assert_eq!(
            compiled.matched_rule,
            interpreted.matched_rule,
            "{} ruleset:\n{}",
            name,
            text
        );
        prop_assert_eq!(
            compiled.matched_line,
            interpreted.matched_line,
            "{} ruleset:\n{}",
            name,
            text
        );
        prop_assert_eq!(
            compiled.keep_state,
            interpreted.keep_state,
            "{} ruleset:\n{}",
            name,
            text
        );
        prop_assert_eq!(
            compiled.quick,
            interpreted.quick,
            "{} ruleset:\n{}",
            name,
            text
        );
    }
    // Neither compiled path examines more rules than the interpreter, and
    // the tree never examines more than the linear scan (its candidate set
    // is a subset of the live rules).
    prop_assert!(linear.rules_evaluated <= interpreted.rules_evaluated);
    prop_assert!(tree.rules_evaluated <= linear.rules_evaluated);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_policy_is_decision_equivalent_to_interpreter(
        text in arb_ruleset_text(),
        flow in arb_flow(),
        seed in any::<u32>(),
    ) {
        // Derive the responses from an inner generator so every case also
        // varies the response shapes.
        let mut rng = proptest::test_runner::TestRng::deterministic(&format!("responses-{seed}"));
        let src = arb_response(flow).generate(&mut rng);
        let dst = arb_response(flow).generate(&mut rng);
        assert_three_way(&text, &flow, src.as_ref(), dst.as_ref())?;
    }

    #[test]
    fn dispatch_heavy_policies_are_three_way_equivalent(
        text in arb_dispatch_ruleset_text(),
        flow in arb_flow(),
        seed in any::<u32>(),
    ) {
        let mut rng = proptest::test_runner::TestRng::deterministic(&format!("dispatch-{seed}"));
        let src = arb_response(flow).generate(&mut rng);
        let dst = arb_response(flow).generate(&mut rng);
        assert_three_way(&text, &flow, src.as_ref(), dst.as_ref())?;
    }
}
