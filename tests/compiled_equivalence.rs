//! Property test: the compiled PF+=2 evaluator is decision-equivalent to the
//! AST interpreter.
//!
//! Randomized rule sets (tables, macros, dicts, protocol constraints,
//! negated endpoints, named/numeric/range ports, the full predicate
//! vocabulary, `quick` and `keep state`) are evaluated over randomized flows
//! and responses through both `EvalContext` (the reference oracle) and
//! `CompiledPolicy`. Every field of the verdict except `rules_evaluated`
//! must agree — the compiled form is allowed (indeed, expected) to examine
//! fewer rules, but never to decide differently or attribute the decision
//! to a different rule.

use proptest::prelude::*;

use identxx::pf::{parse_ruleset, EvalContext, PolicyCompiler};
use identxx::proto::{FiveTuple, IpProtocol, Ipv4Addr, Response, Section};

/// A small address pool so random endpoints and random flows actually
/// collide: mixed hosts inside and outside the generated tables/CIDRs.
const ADDRS: [[u8; 4]; 6] = [
    [192, 168, 0, 10],
    [192, 168, 0, 77],
    [192, 168, 1, 1],
    [10, 0, 0, 5],
    [10, 9, 9, 9],
    [8, 8, 8, 8],
];

/// Ports drawn so that `port 80`, `port http`, and `port 1000:2000` rules
/// all have both hits and misses.
const PORTS: [u16; 6] = [80, 443, 22, 1500, 2500, 7000];

/// Response values: app names, group lists, versions (numeric and not).
const VALUES: [&str; 8] = [
    "skype",
    "firefox",
    "resolver",
    "users wheel",
    "guests",
    "210",
    "150",
    "2.1.0",
];

const KEYS: [&str; 5] = ["name", "version", "groupID", "userID", "os-patch"];

fn arb_addr_token() -> impl Strategy<Value = String> {
    prop_oneof![
        (0usize..ADDRS.len()).prop_map(|i| {
            let a = ADDRS[i];
            format!("{}.{}.{}.{}", a[0], a[1], a[2], a[3])
        }),
        Just("192.168.0.0/24".to_string()),
        Just("10.0.0.0/8".to_string()),
    ]
}

/// One endpoint: `any`, a host/CIDR, or a table reference (sometimes to a
/// missing table), optionally negated, with an optional port constraint.
fn arb_endpoint() -> impl Strategy<Value = String> {
    let addr = prop_oneof![
        Just("any".to_string()),
        arb_addr_token(),
        Just("<lan>".to_string()),
        Just("<all>".to_string()),
        Just("<missing>".to_string()),
    ];
    let port = prop_oneof![
        Just(String::new()),
        Just(" port 80".to_string()),
        Just(" port http".to_string()),
        Just(" port nosuchservice".to_string()),
        Just(" port 1000:2000".to_string()),
    ];
    (any::<bool>(), addr, port).prop_map(|(negate, addr, port)| {
        let bang = if negate { "!" } else { "" };
        format!("{bang}{addr}{port}")
    })
}

fn arb_arg() -> impl Strategy<Value = String> {
    prop_oneof![
        (0usize..KEYS.len(), any::<bool>(), any::<bool>()).prop_map(|(k, dst, concat)| {
            let star = if concat { "*" } else { "" };
            let side = if dst { "dst" } else { "src" };
            format!("{star}@{side}[{}]", KEYS[k])
        }),
        (0usize..VALUES.len()).prop_map(|v| VALUES[v].to_string()),
        Just("$apps".to_string()),
        Just("$undefined".to_string()),
        Just("@meta[owner]".to_string()),
        Just("@meta[missing]".to_string()),
    ]
}

fn arb_predicate() -> impl Strategy<Value = String> {
    let cmp = (
        prop_oneof![
            Just("eq"),
            Just("ne"),
            Just("gt"),
            Just("lt"),
            Just("gte"),
            Just("lte"),
        ],
        arb_arg(),
        arb_arg(),
    )
        .prop_map(|(op, a, b)| format!("{op}({a}, {b})"));
    let exists = arb_arg().prop_map(|a| format!("exists({a})"));
    let member = (
        arb_arg(),
        prop_oneof![
            Just("$apps".to_string()),
            Just("users".to_string()),
            Just("lan".to_string()),
            arb_arg(),
        ],
    )
        .prop_map(|(v, l)| format!("member({v}, {l})"));
    let includes = (arb_arg(), arb_arg()).prop_map(|(h, n)| format!("includes({h}, {n})"));
    let bad = prop_oneof![
        Just("eq(@src[name])".to_string()),
        Just("frobnicate(@src[name])".to_string()),
    ];
    prop_oneof![cmp, exists, member, includes, bad]
}

fn arb_rule() -> impl Strategy<Value = String> {
    let proto = prop_oneof![
        Just(String::new()),
        Just(" proto tcp".to_string()),
        Just(" proto udp".to_string()),
        Just(" proto icmp".to_string()),
    ];
    let preds = prop::collection::vec(arb_predicate(), 0..3);
    (
        any::<bool>(),
        // Keep `quick` rare so most rule sets exercise last-match-wins.
        (0u8..10).prop_map(|q| q == 0),
        proto,
        prop_oneof![Just(None), (arb_endpoint(), arb_endpoint()).prop_map(Some)],
        preds,
        any::<bool>(),
    )
        .prop_map(|(pass, quick, proto, endpoints, preds, keep)| {
            let mut rule = String::from(if pass { "pass" } else { "block" });
            if quick {
                rule.push_str(" quick");
            }
            rule.push_str(&proto);
            match endpoints {
                None => rule.push_str(" all"),
                Some((from, to)) => {
                    rule.push_str(" from ");
                    rule.push_str(&from);
                    rule.push_str(" to ");
                    rule.push_str(&to);
                }
            }
            for pred in preds {
                rule.push_str(" with ");
                rule.push_str(&pred);
            }
            if keep {
                rule.push_str(" keep state");
            }
            rule
        })
}

fn arb_ruleset_text() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_rule(), 1..8).prop_map(|rules| {
        let mut text = String::from(
            "table <server> { 192.168.1.1 }\n\
             table <lan> { 192.168.0.0/24 }\n\
             table <all> { <lan> <server> <all> }\n\
             apps = \"{ skype firefox }\"\n\
             dict <meta> { owner : alice }\n",
        );
        for rule in rules {
            text.push_str(&rule);
            text.push('\n');
        }
        text
    })
}

fn arb_flow() -> impl Strategy<Value = FiveTuple> {
    (
        0usize..ADDRS.len(),
        0usize..ADDRS.len(),
        0usize..PORTS.len(),
        0usize..PORTS.len(),
        prop_oneof![
            Just(IpProtocol::Tcp),
            Just(IpProtocol::Udp),
            Just(IpProtocol::Icmp),
            Just(IpProtocol::Other(47)),
        ],
    )
        .prop_map(|(s, d, sp, dp, proto)| {
            FiveTuple::new(
                Ipv4Addr::from(ADDRS[s]),
                PORTS[sp],
                Ipv4Addr::from(ADDRS[d]),
                PORTS[dp],
                proto,
            )
        })
}

/// A response: 0–2 sections of random key/value pairs (two sections exercise
/// `latest` vs `*`-concatenation), or no response at all.
fn arb_response(flow: FiveTuple) -> impl Strategy<Value = Option<Response>> {
    let section = prop::collection::vec((0usize..KEYS.len(), 0usize..VALUES.len()), 1..4);
    prop_oneof![
        Just(None),
        prop::collection::vec(section, 0..3).prop_map(move |sections| {
            let mut response = Response::new(flow);
            for pairs in sections {
                let mut s = Section::new();
                for (k, v) in pairs {
                    s.push(KEYS[k], VALUES[v]);
                }
                response.push_section(s);
            }
            Some(response)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiled_policy_is_decision_equivalent_to_interpreter(
        text in arb_ruleset_text(),
        flow in arb_flow(),
        seed in any::<u32>(),
    ) {
        let ruleset = parse_ruleset(&text).unwrap();

        // Derive the responses from an inner generator so every case also
        // varies the response shapes.
        let mut rng = proptest::test_runner::TestRng::deterministic(&format!("responses-{seed}"));
        let src = arb_response(flow).generate(&mut rng);
        let dst = arb_response(flow).generate(&mut rng);

        let mut ctx = EvalContext::new(&ruleset)
            .with_named_list("users", vec!["users".to_string()]);
        if let Some(src) = &src {
            ctx = ctx.with_src_response(src);
        }
        if let Some(dst) = &dst {
            ctx = ctx.with_dst_response(dst);
        }
        let interpreted = ctx.evaluate(&flow);

        let compiled = PolicyCompiler::new()
            .with_named_list("users", vec!["users".to_string()])
            .compile(&ruleset)
            .evaluate(&flow, src.as_ref(), dst.as_ref());

        prop_assert_eq!(compiled.decision, interpreted.decision, "ruleset:\n{}", text);
        prop_assert_eq!(compiled.matched_rule, interpreted.matched_rule, "ruleset:\n{}", text);
        prop_assert_eq!(compiled.matched_line, interpreted.matched_line, "ruleset:\n{}", text);
        prop_assert_eq!(compiled.keep_state, interpreted.keep_state, "ruleset:\n{}", text);
        prop_assert_eq!(compiled.quick, interpreted.quick, "ruleset:\n{}", text);
        // The compiled form may skip non-candidate rules but never examines
        // more than the interpreter.
        prop_assert!(compiled.rules_evaluated <= interpreted.rules_evaluated);
    }
}
