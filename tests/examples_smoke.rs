//! Workspace smoke test: every example under `examples/` must compile, and
//! `quickstart` must run to completion — the same guarantees CI enforces
//! with `cargo build --examples` / `cargo run --example quickstart`.
//!
//! The cargo-reinvoking tests are **gated behind `IDENTXX_SMOKE=1`** so a
//! plain `cargo test -q` stays fast; CI covers the same ground through its
//! dedicated "Examples compile" / "Quickstart example runs" workflow steps,
//! and anyone touching the examples can set the variable for the full check
//! locally. The example-list consistency test always runs — it is cheap and
//! catches a stale constant.
//!
//! The nested cargo invocations share the outer build's target directory;
//! cargo's own locking serializes them safely and the second build is
//! incremental.

use std::path::Path;
use std::process::Command;

/// Whether the expensive cargo-reinvoking tests are enabled.
fn smoke_enabled() -> bool {
    std::env::var_os("IDENTXX_SMOKE").is_some_and(|v| v != "0")
}

/// The six scenarios shipped with the workspace; update when adding one.
const EXAMPLES: [&str; 6] = [
    "branch_collaboration",
    "conficker_mitigation",
    "live_daemon",
    "quickstart",
    "research_delegation",
    "skype_policy",
];

fn cargo() -> Command {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

#[test]
fn example_list_matches_examples_dir() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut found: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    found.sort();
    assert_eq!(found, EXAMPLES, "EXAMPLES constant is out of date");
}

#[test]
fn all_examples_compile() {
    if !smoke_enabled() {
        eprintln!("skipping (set IDENTXX_SMOKE=1 to run the example build smoke test)");
        return;
    }
    let status = cargo()
        .args(["build", "--examples"])
        .status()
        .expect("cargo build --examples spawns");
    assert!(status.success(), "cargo build --examples failed");
}

#[test]
fn quickstart_example_runs() {
    if !smoke_enabled() {
        eprintln!("skipping (set IDENTXX_SMOKE=1 to run the quickstart smoke test)");
        return;
    }
    let output = cargo()
        .args(["run", "--example", "quickstart"])
        .output()
        .expect("cargo run --example quickstart spawns");
    assert!(
        output.status.success(),
        "quickstart failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("audit log"),
        "quickstart output missing the audit log section:\n{stdout}"
    );
}
