//! E7: the expressiveness claim of §1/§6 — policies over principals
//! (users, applications, versions) match administrator intent far better than
//! port-based or binding-based policies on the same workload.

use identxx::baselines::common::IntentScore;
use identxx::baselines::{EthaneController, EthanePolicy, FlowClassifier, VanillaFirewall};
use identxx::hostmodel::Executable;
use identxx::netsim::workload::{WorkloadConfig, WorkloadGenerator};
use identxx::prelude::*;

const IDENTXX_POLICY: &str = "\
block all
pass all with eq(@src[name], firefox) keep state
pass all with eq(@src[name], skype) with gte(@src[version], 200) keep state
pass all with eq(@src[name], thunderbird) keep state
pass all with eq(@src[name], ssh) keep state
pass all with eq(@src[name], Server) keep state
pass all with eq(@src[name], research-app) keep state
";

fn score_mechanisms(flow_count: usize, seed: u64) -> (IntentScore, IntentScore, IntentScore) {
    let mut net = EnterpriseNetwork::star_with_config(
        20,
        ControllerConfig::new().with_control_file("00.control", IDENTXX_POLICY),
    )
    .unwrap();
    let hosts = net.host_addrs();
    let flows = WorkloadGenerator::new(WorkloadConfig::enterprise(hosts.clone(), flow_count, seed))
        .generate();

    let mut vanilla = VanillaFirewall::enterprise_default(Ipv4Addr::new(10, 0, 0, 0), 16);
    vanilla.add_rule(identxx::baselines::PortRule::allow_port(7000));
    let mut ethane = EthaneController::new();
    for addr in &hosts {
        ethane.bind(*addr, format!("host-{addr}"), "employees");
    }
    for port in [80u16, 443, 25, 22, 445, 7000] {
        ethane.add_rule(EthanePolicy {
            src_group: Some("employees".into()),
            dst_group: Some("employees".into()),
            dst_port: Some(port),
            allow: true,
        });
    }

    let (mut identxx, mut vanilla_score, mut ethane_score) = (
        IntentScore::default(),
        IntentScore::default(),
        IntentScore::default(),
    );
    for flow in &flows {
        let exe = Executable::new(
            format!("/usr/bin/{}", flow.app.name),
            flow.app.name.replace("-old", ""),
            flow.app.version,
            "vendor",
            &flow.app.app_type,
        );
        {
            let mut daemon = net.daemon_mut(flow.five_tuple.src_ip).unwrap();
            let pid = daemon.host_mut().spawn(&flow.user, exe);
            daemon.host_mut().connect_flow(pid, flow.five_tuple);
        }

        identxx.record(
            flow.app.intended_allowed,
            net.decide(&flow.five_tuple).is_pass(),
        );
        vanilla_score.record(flow.app.intended_allowed, vanilla.allow(&flow.five_tuple));
        ethane_score.record(flow.app.intended_allowed, ethane.allow(&flow.five_tuple));
    }
    (identxx, vanilla_score, ethane_score)
}

#[test]
fn identxx_matches_intent_better_than_port_and_binding_baselines() {
    let (identxx, vanilla, ethane) = score_mechanisms(600, 42);

    // ident++ makes essentially no mistakes on this workload: every decision
    // is based on the actual application identity.
    assert!(
        identxx.accuracy() > 0.99,
        "ident++ accuracy {}",
        identxx.accuracy()
    );
    assert_eq!(
        identxx.false_allow, 0,
        "ident++ must not admit unwanted applications"
    );

    // The baselines cannot separate the port-80 applications, so they leak
    // the unwanted ones through (false allows) — the Skype-vs-Web problem.
    assert!(
        vanilla.false_allow > 0,
        "the port firewall should leak disguised apps"
    );
    assert!(ethane.false_allow > 0, "ethane should leak disguised apps");
    assert!(identxx.accuracy() > vanilla.accuracy());
    assert!(identxx.accuracy() > ethane.accuracy());
    assert!(identxx.false_allow_rate() < vanilla.false_allow_rate());
    assert!(identxx.false_allow_rate() < ethane.false_allow_rate());
}

#[test]
fn results_are_stable_across_seeds() {
    for seed in [1u64, 2, 3] {
        let (identxx, vanilla, _) = score_mechanisms(300, seed);
        assert!(
            identxx.false_allow_rate() < vanilla.false_allow_rate(),
            "seed {seed}"
        );
    }
}

#[test]
fn port_based_deny_causes_collateral_damage() {
    // The other horn of the dilemma (§1, SMTP example): if the port firewall
    // tries to block the unwanted port-80 application by closing port 80, it
    // also blocks every legitimate browser — massive false-block rate —
    // whereas ident++ expresses the same intent with zero collateral damage.
    let mut net = EnterpriseNetwork::star_with_config(
        10,
        ControllerConfig::new().with_control_file(
            "00.control",
            "block all\npass all with eq(@src[name], firefox) keep state\n",
        ),
    )
    .unwrap();
    let hosts = net.host_addrs();
    let flows = WorkloadGenerator::new(WorkloadConfig::enterprise(hosts, 400, 5)).generate();

    // Port firewall that blocks port 80 entirely to stop the malware.
    let mut strict = VanillaFirewall::new();
    strict.add_rule(identxx::baselines::PortRule {
        allow: false,
        src: None,
        dst: None,
        dst_ports: Some((80, 80)),
    });
    strict.set_default_allow(true);

    let mut strict_score = IntentScore::default();
    let mut identxx_score = IntentScore::default();
    for flow in flows.iter().filter(|f| f.five_tuple.dst_port == 80) {
        let intended = f_intended(flow);
        strict_score.record(intended, strict.allow(&flow.five_tuple));
        let exe = Executable::new(
            format!("/usr/bin/{}", flow.app.name),
            flow.app.name.replace("-old", ""),
            flow.app.version,
            "vendor",
            &flow.app.app_type,
        );
        {
            let mut daemon = net.daemon_mut(flow.five_tuple.src_ip).unwrap();
            let pid = daemon.host_mut().spawn(&flow.user, exe);
            daemon.host_mut().connect_flow(pid, flow.five_tuple);
        }
        identxx_score.record(intended, net.decide(&flow.five_tuple).is_pass());
    }
    // In this scenario only firefox is intended; closing the port blocks it
    // all (false blocks), ident++ keeps it working.
    assert!(strict_score.false_block_rate() > 0.9);
    assert!(identxx_score.false_block_rate() < 0.05);

    fn f_intended(flow: &identxx::netsim::workload::Flow) -> bool {
        flow.app.name == "firefox"
    }
}
