//! Failure injection: silent daemons, hosts without ident++ support,
//! malformed delegated rules, tampered signatures, and hostile protocol input.
//! The controller must fail closed (under default-deny) and never panic.

use identxx::daemon::appconfig::signed_app_config;
use identxx::hostmodel::Executable;
use identxx::prelude::*;

const POLICY: &str = "block all\npass all with eq(@src[name], firefox) keep state\n";

#[test]
fn silent_source_daemon_fails_closed() {
    let mut net = EnterpriseNetwork::star(4, POLICY).unwrap();
    let hosts = net.host_addrs();
    let flow = net.start_app(hosts[0], hosts[1], 80, "alice", firefox_app());
    net.daemon_mut(hosts[0]).unwrap().set_silent(true);
    let decision = net.decide(&flow);
    assert!(!decision.is_pass());
    assert!(decision.src_response.is_none());
    // Queries were still attempted (and counted).
    assert_eq!(decision.queries_issued, 2);
}

#[test]
fn host_without_daemon_can_still_be_covered_by_interception() {
    // §4 "Incremental Benefit": controllers can answer some queries on behalf
    // of end-hosts that do not implement ident++.
    let mut net = EnterpriseNetwork::star(4, POLICY).unwrap();
    let hosts = net.host_addrs();
    let flow = net.start_app(hosts[0], hosts[1], 80, "alice", firefox_app());
    // Remove the destination daemon entirely: the decision still works
    // because the policy only needs source-side facts.
    net.controller_mut().daemons_mut().unregister(hosts[1]);
    assert!(net.decide(&flow).is_pass());

    // A policy that needs destination facts fails closed without a daemon…
    net.controller_mut()
        .update_control_file(
            "00.control",
            "block all\npass all with eq(@dst[name], httpd)\n",
        )
        .unwrap();
    let flow2 = net.start_app(hosts[0], hosts[1], 80, "alice", firefox_app());
    assert!(!net.decide(&flow2).is_pass());
    // …until an interceptor speaks for the legacy host.
    net.controller_mut().add_interceptor(Box::new(
        identxx::controller::intercept::StaticInterceptor::new(
            "legacy",
            vec![hosts[1]],
            vec![("name".to_string(), "httpd".to_string())],
        ),
    ));
    assert!(net.decide(&flow2).is_pass());
}

#[test]
fn churned_out_daemon_fails_closed_and_rejoins_cleanly() {
    // Population churn × fail-closed (DESIGN.md §10): a daemon that leaves
    // mid-stream makes its host's queries unanswerable, so under
    // `fail_closed_on_unanswered` new flows from that host are denied with a
    // fail-closed audit note — and the deny is never cached, so the host
    // passes again the moment it rejoins.
    let config = identxx::controller::ControllerConfig::new()
        .with_control_file("00.control", POLICY)
        .with_fail_closed_on_unanswered();
    let mut net = EnterpriseNetwork::star_with_config(4, config).unwrap();
    let hosts = net.host_addrs();
    let flow = net.start_app(hosts[0], hosts[1], 80, "alice", firefox_app());

    // Departure: capture the daemon as it leaves (the directory hands it
    // back), and check the tier-facing hook agrees it is already gone.
    let departed = net
        .controller_mut()
        .daemons_mut()
        .unregister(hosts[0])
        .expect("h0 started with a live daemon");
    assert!(
        !net.controller_mut().unregister_daemon(hosts[0]),
        "double departure must report the daemon as already gone"
    );

    let denied = net.decide(&flow);
    assert!(!denied.is_pass(), "departed source must fail closed");
    assert!(denied.src_response.is_none());
    assert!(
        net.controller()
            .audit()
            .policy_notes()
            .iter()
            .any(|note| note.category == "fail-closed"),
        "fail-closed denies must be audited as such"
    );
    assert_eq!(
        net.controller().state_table().len(),
        0,
        "a fail-closed deny must never be cached"
    );

    // Rejoin through the churn hook: the very next decision passes — no
    // negative cache entry survived the outage.
    net.controller_mut().register_daemon(departed);
    assert!(net.decide(&flow).is_pass(), "rejoined daemon must pass");

    // Second departure, this time through the hook. The pass above was
    // cached `keep state`, so the *same* five-tuple still passes from cache
    // (documented semantics: flow-table entries outlive the host), but a
    // fresh flow from the departed host fails closed again.
    let fresh = net.start_app(hosts[0], hosts[1], 8080, "alice", firefox_app());
    assert!(net.controller_mut().unregister_daemon(hosts[0]));
    assert!(net.decide(&flow).is_pass(), "cached verdict outlives churn");
    assert!(!net.decide(&fresh).is_pass(), "uncached flow fails closed");
}

#[test]
fn malformed_delegated_requirements_never_grant_access() {
    let policy = "block all\npass all with allowed(@src[requirements])\n";
    let mut net = EnterpriseNetwork::star(4, policy).unwrap();
    let hosts = net.host_addrs();
    let exe = Executable::new("/usr/bin/tool", "tool", 1, "v", "t");
    {
        let mut daemon = net.daemon_mut(hosts[0]).unwrap();
        daemon.add_app_config(
            identxx::daemon::AppConfig::new("/usr/bin/tool")
                .with_pair("name", "tool")
                .with_pair("requirements", "pass from syntax error %%%"),
        );
    }
    let flow = net.start_app(hosts[0], hosts[1], 80, "alice", exe);
    assert!(!net.decide(&flow).is_pass());
}

#[test]
fn recursive_requirements_terminate_and_fail_closed() {
    let policy = "block all\npass all with allowed(@src[requirements])\n";
    let mut net = EnterpriseNetwork::star(4, policy).unwrap();
    let hosts = net.host_addrs();
    let exe = Executable::new("/usr/bin/tool", "tool", 1, "v", "t");
    {
        let mut daemon = net.daemon_mut(hosts[0]).unwrap();
        daemon.add_app_config(
            identxx::daemon::AppConfig::new("/usr/bin/tool")
                .with_pair("name", "tool")
                .with_pair(
                    "requirements",
                    "block all\npass all with allowed(@src[requirements])",
                ),
        );
    }
    let flow = net.start_app(hosts[0], hosts[1], 80, "alice", exe);
    assert!(!net.decide(&flow).is_pass());
}

#[test]
fn tampered_executable_invalidates_delegation() {
    // The user signed requirements for the genuine binary; a trojaned binary
    // with the same name and version has a different exe-hash, so verify()
    // rejects the delegation.
    let research_key = identxx::crypto::KeyPair::from_seed(b"research");
    let genuine = Executable::new(
        "/usr/bin/research-app",
        "research-app",
        1,
        "lab",
        "research",
    );
    let requirements = "block all\npass all with eq(@src[name], research-app)";
    let signed = signed_app_config(&genuine, requirements, &research_key, None);

    let policy = format!(
        "dict <pubkeys> {{ research : {} }}\nblock all\npass all with allowed(@src[requirements]) with verify(@src[req-sig], @pubkeys[research], @src[exe-hash], @src[app-name], @src[requirements])\n",
        research_key.public().to_hex()
    );
    let mut net = EnterpriseNetwork::star(4, &policy).unwrap();
    let hosts = net.host_addrs();

    // Genuine binary: allowed.
    {
        let mut daemon = net.daemon_mut(hosts[0]).unwrap();
        daemon.add_app_config(signed.clone());
    }
    let ok_flow = net.start_app(hosts[0], hosts[1], 7000, "alice", genuine.clone());
    assert!(net.decide(&ok_flow).is_pass());

    // Trojaned binary at the same path: the OS reports a different hash
    // (simulated as a different version ⇒ different image), so the same
    // signed requirements no longer verify.
    let trojaned = Executable::new(
        "/usr/bin/research-app",
        "research-app",
        2,
        "lab",
        "research",
    );
    {
        let mut daemon = net.daemon_mut(hosts[2]).unwrap();
        daemon.add_app_config(signed);
    }
    let bad_flow = net.start_app(hosts[2], hosts[1], 7000, "alice", trojaned);
    assert!(!net.decide(&bad_flow).is_pass());
}

#[test]
fn hostile_wire_input_is_rejected_not_panicking() {
    use identxx::proto::{codec, FlowAddresses, WireMessage};
    let addrs = FlowAddresses::new(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2));
    // A grab-bag of hostile inputs: none may panic, all must error or ask for
    // more data.
    let inputs: Vec<Vec<u8>> = vec![
        b"".to_vec(),
        b"\n\n\n".to_vec(),
        b"IDENT++/1 QUERY 1.1.1.1 2.2.2.2 99999999\n".to_vec(),
        b"IDENT++/1 RESPONSE 1.1.1.1 2.2.2.2 5\nab".to_vec(),
        vec![0xff; 2048],
        b"IDENT++/9 QUERY 1.1.1.1 2.2.2.2 0\n".to_vec(),
    ];
    for input in inputs {
        let _ = WireMessage::decode(&input);
    }
    assert!(codec::decode_response("tcp 1 2\n\u{0}garbage\n", addrs).is_err());
    assert!(codec::decode_query("notaproto x y\n", addrs).is_err());

    // A daemon answer with an enormous number of pairs is capped by the codec
    // size limit rather than exhausting controller memory.
    let mut big = String::from("tcp 1 2\n");
    for i in 0..10_000 {
        big.push_str(&format!("key-{i}: {}\n", "v".repeat(16)));
    }
    assert!(codec::decode_response(&big, addrs).is_err());
}

#[test]
fn policy_with_unknown_function_or_missing_table_fails_closed() {
    // An administrator typo in a pass rule must not open the network.
    let mut net = EnterpriseNetwork::star(
        4,
        "block all\npass all with definitely-not-a-function(@src[name])\npass from <no-such-table> to any\n",
    )
    .unwrap();
    let hosts = net.host_addrs();
    let flow = net.start_app(hosts[0], hosts[1], 80, "alice", firefox_app());
    assert!(!net.decide(&flow).is_pass());
}
