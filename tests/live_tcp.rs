//! End-to-end test over real TCP sockets: the full `IdentxxController`
//! decision cycle running on a `NetworkBackend` — ident++ daemons served by
//! tokio, both flow ends queried **concurrently** over loopback sockets, the
//! responses fed through the PF+=2 policy, and the state table / audit log
//! updated — the deployment-shaped path of the system.

use std::time::{Duration, Instant};

use identxx::daemon::Daemon;
use identxx::hostmodel::{Executable, Host};
use identxx::net::{query_daemon, DaemonServer};
use identxx::prelude::*;

fn skype(version: i64) -> Executable {
    Executable::new("/usr/bin/skype", "skype", version, "skype.com", "voip")
}

/// The Fig. 2 skype policy: both ends must run skype.
const PAIR_POLICY: &str =
    "block all\npass all with eq(@src[name], skype) with eq(@dst[name], skype) keep state\n";

/// Stages alice→bob skype daemons and returns them with the staged flow.
fn staged_pair() -> (Daemon, Daemon, FiveTuple) {
    let src_ip = Ipv4Addr::new(10, 0, 0, 1);
    let dst_ip = Ipv4Addr::new(10, 0, 0, 2);
    let mut src_daemon = Daemon::bare(Host::new("laptop", src_ip));
    let flow = src_daemon
        .host_mut()
        .open_connection("alice", skype(210), 40321, dst_ip, 34000);
    let mut dst_daemon = Daemon::bare(Host::new("desktop", dst_ip));
    let pid = dst_daemon.host_mut().spawn("bob", skype(210));
    dst_daemon.host_mut().listen(pid, IpProtocol::Tcp, 34000);
    (src_daemon, dst_daemon, flow)
}

#[tokio::test]
async fn controller_decides_flows_over_tcp_backend() {
    let (src_daemon, dst_daemon, flow) = staged_pair();
    let src_server = DaemonServer::start(src_daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let dst_server = DaemonServer::start(dst_daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();

    let backend = NetworkBackend::new()
        .with_budget(Duration::from_secs(2))
        .with_endpoint(flow.src_ip, src_server.local_addr())
        .with_endpoint(flow.dst_ip, dst_server.local_addr());
    let config = ControllerConfig::new().with_control_file("00.control", PAIR_POLICY);
    let mut controller = IdentxxController::new(config)
        .unwrap()
        .with_backend(Box::new(backend));

    // The full decision cycle: two concurrent queries over real sockets,
    // policy evaluation, state-table insert, audit record.
    let decision = controller.decide(&flow, 0);
    assert!(decision.is_pass(), "skype↔skype must pass");
    assert_eq!(decision.queries_issued, 2);
    assert!(!decision.from_cache);
    assert_eq!(
        decision
            .src_response
            .as_ref()
            .unwrap()
            .latest(well_known::USER_ID),
        Some("alice")
    );
    assert_eq!(
        decision
            .dst_response
            .as_ref()
            .unwrap()
            .latest(well_known::USER_ID),
        Some("bob")
    );
    assert_eq!(src_server.queries_served(), 1);
    assert_eq!(dst_server.queries_served(), 1);

    // The repeat decision is served from the controller's state table: no
    // traffic reaches either daemon.
    let cached = controller.decide(&flow, 10);
    assert!(cached.from_cache);
    assert_eq!(cached.queries_issued, 0);
    assert_eq!(src_server.queries_served(), 1);
    assert_eq!(dst_server.queries_served(), 1);

    // A flow toward a port nobody listens on yields no application identity
    // on the destination side, so the pair policy blocks it — over the same
    // pooled connections.
    let other_flow = FiveTuple::tcp([10, 0, 0, 1], 40999, [10, 0, 0, 2], 9999);
    let blocked = controller.decide(&other_flow, 20);
    assert!(!blocked.is_pass());
    assert_eq!(blocked.queries_issued, 2);

    let stats = controller.backend_stats();
    assert_eq!(stats.queries_sent, 4);
    assert_eq!(stats.responses_received, 4);
    assert_eq!(stats.timeouts, 0);
    assert_eq!(controller.audit().len(), 3);

    src_server.shutdown();
    dst_server.shutdown();
}

#[tokio::test]
async fn silent_and_unreachable_daemons_fail_closed_over_tcp() {
    let (src_daemon, mut dst_daemon, flow) = staged_pair();
    dst_daemon.set_silent(true);
    let src_server = DaemonServer::start(src_daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let dst_server = DaemonServer::start(dst_daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();

    let backend = NetworkBackend::new()
        .with_budget(Duration::from_millis(500))
        .with_endpoint(flow.src_ip, src_server.local_addr())
        .with_endpoint(flow.dst_ip, dst_server.local_addr());
    let config = ControllerConfig::new().with_control_file("00.control", PAIR_POLICY);
    let mut controller = IdentxxController::new(config)
        .unwrap()
        .with_backend(Box::new(backend));

    // Silent destination: both queries count, one goes unanswered, and the
    // default-deny policy fails closed.
    let decision = controller.decide(&flow, 0);
    assert!(!decision.is_pass());
    assert_eq!(decision.queries_issued, 2);
    assert!(decision.src_response.is_some());
    assert!(decision.dst_response.is_none());
    let stats = controller.backend_stats();
    assert_eq!(stats.queries_sent, 2);
    assert_eq!(stats.responses_received, 1);
    assert_eq!(stats.timeouts, 1);

    // A host with no registered endpoint at all behaves the same way.
    let stranger = FiveTuple::tcp([192, 168, 99, 99], 1234, [10, 0, 0, 1], 34000);
    let decision = controller.decide(&stranger, 10);
    assert!(!decision.is_pass());
    assert_eq!(decision.queries_issued, 2);
    assert!(decision.src_response.is_none());

    src_server.shutdown();
    dst_server.shutdown();
}

#[tokio::test]
async fn dual_end_queries_cost_max_not_sum() {
    let (mut src_daemon, mut dst_daemon, flow) = staged_pair();
    // 400 ms of artificial latency on *each* end: issued serially the two
    // round trips cost ≥ 800 ms; issued concurrently they cost ≈ 400 ms.
    // The delay dwarfs scheduler noise on a loaded single-core CI box, so
    // the `< 2×DELAY` bound leaves a full DELAY of headroom either way.
    const DELAY: Duration = Duration::from_millis(400);
    src_daemon.set_response_delay_micros(DELAY.as_micros() as u64);
    dst_daemon.set_response_delay_micros(DELAY.as_micros() as u64);
    let src_server = DaemonServer::start(src_daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let dst_server = DaemonServer::start(dst_daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();

    let backend = NetworkBackend::new()
        .with_budget(Duration::from_secs(2))
        .with_endpoint(flow.src_ip, src_server.local_addr())
        .with_endpoint(flow.dst_ip, dst_server.local_addr());
    let config = ControllerConfig::new().with_control_file("00.control", PAIR_POLICY);
    let mut controller = IdentxxController::new(config)
        .unwrap()
        .with_backend(Box::new(backend));

    let started = Instant::now();
    let decision = controller.decide(&flow, 0);
    let elapsed = started.elapsed();
    assert!(decision.is_pass());
    assert_eq!(decision.queries_issued, 2);
    assert!(
        elapsed >= DELAY,
        "a decision cannot be faster than one round trip ({elapsed:?})"
    );
    assert!(
        elapsed < DELAY * 2,
        "dual-end latency must be ≈ max, not sum, of the round trips \
         (elapsed {elapsed:?} vs 2×{DELAY:?})"
    );

    src_server.shutdown();
    dst_server.shutdown();
}

#[tokio::test]
async fn batched_round_costs_one_round_trip_per_host() {
    // Four flows between the same two hosts, decided in ONE batched round:
    // each host receives a single QUERY-BATCH frame and charges its
    // processing delay once per frame, so the round costs ≈ one delayed
    // round trip — where four singleton decisions would stack four
    // (≥ 4×DELAY). The `< 3×DELAY` bound sits 2×DELAY above the expected
    // cost and a full DELAY below the stacked one, so CI scheduler noise
    // cannot flip the verdict in either direction.
    const DELAY: Duration = Duration::from_millis(300);
    let src_ip = Ipv4Addr::new(10, 0, 0, 1);
    let dst_ip = Ipv4Addr::new(10, 0, 0, 2);
    let mut src_daemon = Daemon::bare(Host::new("laptop", src_ip));
    let mut dst_daemon = Daemon::bare(Host::new("desktop", dst_ip));
    let pid = dst_daemon.host_mut().spawn("bob", skype(210));
    dst_daemon.host_mut().listen(pid, IpProtocol::Tcp, 34000);
    let flows: Vec<FiveTuple> = (0..4u16)
        .map(|i| {
            src_daemon
                .host_mut()
                .open_connection("alice", skype(210), 40_400 + i, dst_ip, 34000)
        })
        .collect();
    src_daemon.set_response_delay_micros(DELAY.as_micros() as u64);
    dst_daemon.set_response_delay_micros(DELAY.as_micros() as u64);

    let src_server = DaemonServer::start(src_daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let dst_server = DaemonServer::start(dst_daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let backend = NetworkBackend::new()
        .with_budget(Duration::from_secs(2))
        .with_endpoint(src_ip, src_server.local_addr())
        .with_endpoint(dst_ip, dst_server.local_addr());
    let config = ControllerConfig::new().with_control_file("00.control", PAIR_POLICY);
    let mut controller = IdentxxController::new(config)
        .unwrap()
        .with_backend(Box::new(backend));

    let started = Instant::now();
    let decisions = controller.decide_batch(&flows, 0);
    let elapsed = started.elapsed();
    assert!(decisions.iter().all(|d| d.is_pass()));
    assert_eq!(controller.backend_stats().queries_sent, 8);
    assert_eq!(controller.backend_stats().responses_received, 8);
    // One frame per host → one delay per host, concurrently.
    assert_eq!(src_server.queries_served(), 4);
    assert_eq!(dst_server.queries_served(), 4);
    assert!(
        elapsed >= DELAY,
        "a round cannot beat one round trip ({elapsed:?})"
    );
    assert!(
        elapsed < DELAY * 3,
        "a batched round must coalesce per host: 8 queries ≈ one delayed \
         round trip, not eight (elapsed {elapsed:?})"
    );

    src_server.shutdown();
    dst_server.shutdown();
}

#[tokio::test]
async fn shared_timeout_budget_bounds_the_whole_decision() {
    let (mut src_daemon, mut dst_daemon, flow) = staged_pair();
    // Both daemons stall far past the budget: the decision must come back
    // within ≈ one budget (both ends time out concurrently), not two.
    src_daemon.set_response_delay_micros(2_000_000);
    dst_daemon.set_response_delay_micros(2_000_000);
    let src_server = DaemonServer::start(src_daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let dst_server = DaemonServer::start(dst_daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();

    // A generous budget (still far under the 2 s stall above) keeps the
    // `< 2×BUDGET` sharing assertion a whole BUDGET away from timer and
    // scheduler jitter on slow CI runners.
    const BUDGET: Duration = Duration::from_millis(500);
    let backend = NetworkBackend::new()
        .with_budget(BUDGET)
        .with_endpoint(flow.src_ip, src_server.local_addr())
        .with_endpoint(flow.dst_ip, dst_server.local_addr());
    let config = ControllerConfig::new().with_control_file("00.control", PAIR_POLICY);
    let mut controller = IdentxxController::new(config)
        .unwrap()
        .with_backend(Box::new(backend));

    let started = Instant::now();
    let decision = controller.decide(&flow, 0);
    let elapsed = started.elapsed();
    assert!(!decision.is_pass(), "no answers in budget → fail closed");
    assert!(decision.src_response.is_none());
    assert!(decision.dst_response.is_none());
    assert_eq!(controller.backend_stats().timeouts, 2);
    assert!(
        elapsed < BUDGET * 2,
        "the budget is shared, not per-end (elapsed {elapsed:?})"
    );

    src_server.shutdown();
    dst_server.shutdown();
}

#[tokio::test]
async fn concurrent_queries_are_served() {
    let mut daemon = Daemon::bare(Host::new("server", Ipv4Addr::new(10, 0, 0, 5)));
    let exe = Executable::new("/usr/sbin/httpd", "httpd", 2, "apache", "web-server");
    let pid = daemon.host_mut().spawn("www", exe);
    daemon.host_mut().listen(pid, IpProtocol::Tcp, 80);
    let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for i in 0..16u16 {
        let flow = FiveTuple::tcp(
            [10, 0, 1, (i % 250) as u8 + 1],
            41000 + i,
            [10, 0, 0, 5],
            80,
        );
        handles.push(tokio::spawn(async move {
            query_daemon(addr, Query::new(flow)).await.unwrap().unwrap()
        }));
    }
    for handle in handles {
        let response = handle.await.unwrap();
        assert_eq!(response.latest(well_known::APP_NAME), Some("httpd"));
        assert_eq!(response.latest(well_known::USER_ID), Some("www"));
    }
    assert_eq!(server.queries_served(), 16);
    server.shutdown();
}
