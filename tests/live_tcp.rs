//! End-to-end test over real TCP sockets: ident++ daemons served by tokio,
//! queried by a controller-side client, with the responses fed into the PF+=2
//! policy — the deployment-shaped path of the system.

use identxx::daemon::Daemon;
use identxx::hostmodel::{Executable, Host};
use identxx::net::{query_daemon, DaemonServer};
use identxx::prelude::*;

#[tokio::test]
async fn controller_queries_both_ends_over_tcp_and_enforces_policy() {
    // Source host: alice runs skype.
    let mut src_daemon = Daemon::bare(Host::new("laptop", Ipv4Addr::new(10, 0, 0, 1)));
    let flow = src_daemon.host_mut().open_connection(
        "alice",
        Executable::new("/usr/bin/skype", "skype", 210, "skype.com", "voip"),
        40321,
        Ipv4Addr::new(10, 0, 0, 2),
        34000,
    );
    // Destination host: bob's machine also runs skype, listening.
    let mut dst_daemon = Daemon::bare(Host::new("desktop", Ipv4Addr::new(10, 0, 0, 2)));
    let pid = dst_daemon.host_mut().spawn(
        "bob",
        Executable::new("/usr/bin/skype", "skype", 210, "skype.com", "voip"),
    );
    dst_daemon.host_mut().listen(pid, IpProtocol::Tcp, 34000);

    let src_server = DaemonServer::start(src_daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let dst_server = DaemonServer::start(dst_daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();

    // The controller queries both ends (over real sockets).
    let src_resp = query_daemon(src_server.local_addr(), Query::for_all_well_known(flow))
        .await
        .unwrap()
        .expect("source daemon answers");
    let dst_resp = query_daemon(dst_server.local_addr(), Query::for_all_well_known(flow))
        .await
        .unwrap()
        .expect("destination daemon answers");
    assert_eq!(src_resp.latest(well_known::USER_ID), Some("alice"));
    assert_eq!(dst_resp.latest(well_known::USER_ID), Some("bob"));

    // The Fig. 2 skype rule evaluated over the live responses.
    let policy = parse_ruleset(
        "block all\npass all with eq(@src[name], skype) with eq(@dst[name], skype)\n",
    )
    .unwrap();
    let verdict = EvalContext::new(&policy)
        .with_responses(&src_resp, &dst_resp)
        .evaluate(&flow);
    assert_eq!(verdict.decision, Decision::Pass);

    // A flow toward a port nobody listens on yields no application identity on
    // the destination side, so the same policy blocks it.
    let other_flow = FiveTuple::tcp([10, 0, 0, 1], 40999, [10, 0, 0, 2], 9999);
    let other_dst = query_daemon(dst_server.local_addr(), Query::new(other_flow))
        .await
        .unwrap()
        .expect("daemon answers with host facts");
    assert_eq!(other_dst.latest(well_known::APP_NAME), None);
    let verdict = EvalContext::new(&policy)
        .with_responses(&src_resp, &other_dst)
        .evaluate(&other_flow);
    assert_eq!(verdict.decision, Decision::Block);

    src_server.shutdown();
    dst_server.shutdown();
}

#[tokio::test]
async fn concurrent_queries_are_served() {
    let mut daemon = Daemon::bare(Host::new("server", Ipv4Addr::new(10, 0, 0, 5)));
    let exe = Executable::new("/usr/sbin/httpd", "httpd", 2, "apache", "web-server");
    let pid = daemon.host_mut().spawn("www", exe);
    daemon.host_mut().listen(pid, IpProtocol::Tcp, 80);
    let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for i in 0..16u16 {
        let flow = FiveTuple::tcp(
            [10, 0, 1, (i % 250) as u8 + 1],
            41000 + i,
            [10, 0, 0, 5],
            80,
        );
        handles.push(tokio::spawn(async move {
            query_daemon(addr, Query::new(flow)).await.unwrap().unwrap()
        }));
    }
    for handle in handles {
        let response = handle.await.unwrap();
        assert_eq!(response.latest(well_known::APP_NAME), Some("httpd"));
        assert_eq!(response.latest(well_known::USER_ID), Some("www"));
    }
    server.shutdown();
}
