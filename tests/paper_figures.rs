//! Integration tests reproducing the paper's figures end to end
//! (daemon → controller → PF+=2 → OpenFlow installation).

use identxx::core::figures::{figure2_skype, figure45_research, figure67_secur, figure8_conficker};
use identxx::core::scenario::render_table;
use identxx::prelude::*;

#[test]
fn figure1_flow_setup_sequence() {
    // Fig. 1: packet-in → ident++ queries to both ends → decision → entries
    // installed along the path → packet proceeds to destination.
    let policy = "block all\npass all with eq(@src[name], firefox) keep state\n";
    let config = ControllerConfig::new().with_control_file("00.control", policy);
    let mut net = EnterpriseNetwork::chain(3, config).unwrap();
    let client = Ipv4Addr::new(10, 0, 0, 1);
    let server = Ipv4Addr::new(10, 0, 1, 1);
    let flow = net.start_app(client, server, 80, "alice", firefox_app());

    // Step 1-2: first packet misses and reaches the controller.
    let outcome = net.deliver_first_packet(&flow, 0);
    assert!(outcome.delivered, "approved packet must reach the server");
    // Step 3: both ends were queried.
    assert_eq!(outcome.queries_issued, 2);
    // Step 4: entries were installed along the path, in both directions, on
    // all three switches.
    assert_eq!(outcome.entries_installed, 6);
    assert_eq!(outcome.switches_traversed, 3);

    // The installed entries serve the reverse direction without another
    // packet-in.
    let audit_before = net.controller().audit().len();
    let reverse = net.deliver_first_packet(&flow.reversed(), 50);
    assert!(reverse.delivered);
    assert_eq!(net.controller().audit().len(), audit_before);

    // The timed simulation reports a setup latency strictly larger than the
    // cached data-path latency, dominated by the ident++ round trips.
    let fresh = net.start_app(client, server, 8080, "alice", firefox_app());
    let report = net.simulate_flow_setup(&fresh).unwrap();
    assert_eq!(report.decision, Decision::Pass);
    assert!(report.setup_latency_us > report.cached_latency_us);
    assert_eq!(report.ident_exchanges, 4);
    // One packet-in plus a flow-mod per switch on the 6-switch path.
    assert!(report.openflow_messages >= 7);
}

#[test]
fn figure2_and_3_skype_policy() {
    let scenario = figure2_skype();
    assert!(
        scenario.all_match(),
        "figure 2/3 decisions diverge from the paper:\n{}",
        render_table(&scenario.flows)
    );
    // The three .control files were concatenated in alphabetical order.
    assert_eq!(
        scenario
            .network
            .controller()
            .config()
            .control_files
            .control_file_names(),
        vec![
            "00-local-header.control",
            "50-skype.control",
            "99-local-footer.control"
        ]
    );
}

#[test]
fn figure4_and_5_research_delegation() {
    let scenario = figure45_research();
    assert!(
        scenario.all_match(),
        "figure 4/5 decisions diverge from the paper:\n{}",
        render_table(&scenario.flows)
    );
}

#[test]
fn figure6_and_7_secur_trust_delegation() {
    let scenario = figure67_secur();
    assert!(
        scenario.all_match(),
        "figure 6/7 decisions diverge from the paper:\n{}",
        render_table(&scenario.flows)
    );
    // The audit log records which decisions relied on Secur's rules, so the
    // administrator can later revoke that trust.
    assert!(
        scenario
            .network
            .controller()
            .audit()
            .by_rule_maker("Secur")
            .count()
            >= 1
    );
}

#[test]
fn figure8_conficker_mitigation() {
    let scenario = figure8_conficker();
    assert!(
        scenario.all_match(),
        "figure 8 decisions diverge from the paper:\n{}",
        render_table(&scenario.flows)
    );
}

#[test]
fn revoking_the_secur_delegation_blocks_future_flows() {
    // §1: the administrator can "override, audit, and revoke the delegation
    // when necessary". Remove Secur's .control file and previously allowed
    // thunderbird traffic stops.
    let mut scenario = figure67_secur();
    let allowed_before: Vec<_> = scenario
        .flows
        .iter()
        .filter(|f| f.actual == Decision::Pass)
        .map(|f| f.flow)
        .collect();
    assert!(!allowed_before.is_empty());
    scenario
        .network
        .controller_mut()
        .remove_control_file("30-secur.control")
        .unwrap();
    for flow in allowed_before {
        assert_eq!(
            scenario.network.decide(&flow).verdict.decision,
            Decision::Block,
            "flow {flow} should be blocked after revoking Secur's rules"
        );
    }
}
