//! Property-based tests (proptest) over the core data structures and
//! invariants: protocol round-trips, PF+=2 evaluation invariants, flow-table
//! matching against a reference matcher, state-table symmetry, and signature
//! unforgeability under mutation.

use proptest::prelude::*;

use identxx::crypto::{sign_bundle, verify_bundle, KeyPair};
use identxx::openflow::{FlowEntry, FlowMatch, FlowTable, OfAction, PacketHeader};
use identxx::pf::{parse_ruleset, Decision, EvalContext, StateTable};
use identxx::prelude::*;
use identxx::proto::codec;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_protocol() -> impl Strategy<Value = IpProtocol> {
    prop_oneof![
        Just(IpProtocol::Tcp),
        Just(IpProtocol::Udp),
        Just(IpProtocol::Icmp),
        any::<u8>().prop_map(IpProtocol::from_number),
    ]
}

fn arb_flow() -> impl Strategy<Value = FiveTuple> {
    (
        arb_ip(),
        any::<u16>(),
        arb_ip(),
        any::<u16>(),
        arb_protocol(),
    )
        .prop_map(|(src, sp, dst, dp, proto)| FiveTuple::new(src, sp, dst, dp, proto))
}

/// Keys valid on the wire: non-empty printable tokens without ':' or newlines.
fn arb_key() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_-]{0,24}"
}

/// Values: printable-ish text possibly containing spaces, newlines, and
/// backslashes (which must survive escaping).
fn arb_value() -> impl Strategy<Value = String> {
    "[ -~\n\\\\]{0,60}"
}

fn arb_section() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((arb_key(), arb_value()), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn response_codec_round_trips(flow in arb_flow(), sections in prop::collection::vec(arb_section(), 0..4)) {
        let mut response = Response::new(flow);
        for section_pairs in &sections {
            let mut section = Section::new();
            for (k, v) in section_pairs {
                section.push(k, v.as_str());
            }
            response.push_section(section);
        }
        let text = codec::encode_response(&response);
        let decoded = codec::decode_response(&text, flow.addresses()).unwrap();
        // Values survive the wire exactly, except trailing whitespace on a
        // value line (trimmed by the line-oriented format) — compare through
        // the accessor used by the policy engine.
        prop_assert_eq!(decoded.section_count(), response.section_count());
        for key in response.keys() {
            let sent: Vec<String> = response.all(key).iter().map(|v| v.trim_end().to_string()).collect();
            let got: Vec<String> = decoded.all(key).iter().map(|v| v.trim_end().to_string()).collect();
            prop_assert_eq!(sent, got, "key {}", key);
        }
    }

    #[test]
    fn query_codec_round_trips(flow in arb_flow(), keys in prop::collection::vec(arb_key(), 0..10)) {
        let mut query = Query::new(flow);
        for k in &keys {
            query = query.with_key(k);
        }
        let text = codec::encode_query(&query);
        let decoded = codec::decode_query(&text, flow.addresses()).unwrap();
        prop_assert_eq!(decoded, query);
    }

    #[test]
    fn five_tuple_reverse_and_canonical_invariants(flow in arb_flow()) {
        prop_assert_eq!(flow.reversed().reversed(), flow);
        prop_assert_eq!(flow.canonical(), flow.reversed().canonical());
        prop_assert_eq!(flow.canonical().canonical(), flow.canonical());
    }

    #[test]
    fn adding_a_non_matching_rule_never_changes_the_decision(
        flow in arb_flow(),
        port in 1u16..65535,
    ) {
        // Base policy decides something about the flow.
        let base = parse_ruleset("block all\npass all with eq(@src[name], firefox)\n").unwrap();
        let mut src = Response::new(flow);
        let mut s = Section::new();
        s.push("name", "firefox");
        src.push_section(s);
        let dst = Response::new(flow);
        let base_decision = EvalContext::new(&base).with_responses(&src, &dst).evaluate(&flow).decision;

        // Append a rule that cannot match this flow (different destination port).
        prop_assume!(port != flow.dst_port);
        let extended_text = format!(
            "block all\npass all with eq(@src[name], firefox)\nblock from any to any port {port}\n"
        );
        let extended = parse_ruleset(&extended_text).unwrap();
        let new_decision = EvalContext::new(&extended).with_responses(&src, &dst).evaluate(&flow).decision;
        prop_assert_eq!(base_decision, new_decision);
    }

    #[test]
    fn quick_rule_short_circuits(flow in arb_flow(), extra_rules in 1usize..50) {
        let mut policy = String::from("pass quick all\n");
        for i in 0..extra_rules {
            policy.push_str(&format!("block all with eq(@src[name], app-{i})\n"));
        }
        let rs = parse_ruleset(&policy).unwrap();
        let verdict = EvalContext::new(&rs).evaluate(&flow);
        prop_assert_eq!(verdict.decision, Decision::Pass);
        prop_assert!(verdict.quick);
        prop_assert_eq!(verdict.rules_evaluated, 1);
    }

    #[test]
    fn flow_table_exact_entry_matches_only_its_flow(flow in arb_flow(), other in arb_flow()) {
        let mut table = FlowTable::new();
        table.install(FlowEntry::new(FlowMatch::exact_five_tuple(&flow), 10, OfAction::Output(1)), 0);
        let hit = table.peek(&PacketHeader::from_flow(&flow, 1));
        prop_assert_eq!(hit, Some(OfAction::Output(1)));
        let other_hit = table.peek(&PacketHeader::from_flow(&other, 1));
        if other == flow {
            prop_assert_eq!(other_hit, Some(OfAction::Output(1)));
        } else {
            prop_assert_eq!(other_hit, None);
        }
    }

    #[test]
    fn flow_table_agrees_with_reference_matcher(
        flows in prop::collection::vec(arb_flow(), 1..20),
        probe in arb_flow(),
    ) {
        // Install exact entries for every flow; the table must report a hit
        // exactly when a linear scan over the set would.
        let mut table = FlowTable::new();
        for f in &flows {
            table.install(FlowEntry::new(FlowMatch::exact_five_tuple(f), 10, OfAction::Output(1)), 0);
        }
        let table_hit = table.peek(&PacketHeader::from_flow(&probe, 1)).is_some();
        let reference_hit = flows.contains(&probe);
        prop_assert_eq!(table_hit, reference_hit);
    }

    #[test]
    fn state_table_is_direction_symmetric(flow in arb_flow(), now in 0u64..1_000_000) {
        let mut state = StateTable::new();
        state.insert(&flow, Decision::Pass, now);
        prop_assert!(state.contains(&flow, now + 1));
        prop_assert!(state.contains(&flow.reversed(), now + 1));
        state.remove(&flow.reversed());
        prop_assert!(!state.contains(&flow, now + 1));
    }

    #[test]
    fn signatures_reject_any_mutation(
        seed in prop::collection::vec(any::<u8>(), 1..16),
        items in prop::collection::vec("[ -~]{0,40}", 1..4),
        mutate_index in any::<prop::sample::Index>(),
    ) {
        let keypair = KeyPair::from_seed(&seed);
        let sig = sign_bundle(&keypair, &items);
        prop_assert!(verify_bundle(&sig, &keypair.public(), &items));

        // Mutate one item; verification must fail.
        let idx = mutate_index.index(items.len());
        let mut tampered = items.clone();
        tampered[idx] = format!("{}!", tampered[idx]);
        prop_assert!(!verify_bundle(&sig, &keypair.public(), &tampered));

        // A different key must also fail.
        let other = KeyPair::from_seed(b"someone else entirely");
        prop_assume!(other.public() != keypair.public());
        prop_assert!(!verify_bundle(&sig, &other.public(), &items));
    }

    #[test]
    fn windowed_bundle_encoding_is_injective(
        key_id in "[a-z]{1,8}",
        not_before in 0u64..1_000,
        window in 1u64..1_000,
        items in prop::collection::vec("[ -~]{0,20}", 1..4),
        mutation in 0usize..5,
        pick in any::<prop::sample::Index>(),
    ) {
        use identxx::crypto::signing::{canonical_encoding, windowed_encoding};

        let not_after = not_before + window;
        let original = windowed_encoding(&key_id, not_before, not_after, &items);

        // Deterministic, and disjoint from the legacy v1 encoding of the
        // same items (so a v1 signature can never verify as windowed).
        prop_assert_eq!(&original, &windowed_encoding(&key_id, not_before, not_after, &items));
        prop_assert_ne!(&original, &canonical_encoding(&items));

        // Every neighboring tuple — key id, either window edge, merged
        // items, or an item boundary shifted by one character — must
        // encode differently. Boundary shifts are the classic injectivity
        // trap: without length prefixes, ["ab", "c"] and ["a", "bc"]
        // would collide.
        let mut m_key = key_id.clone();
        let mut m_before = not_before;
        let mut m_after = not_after;
        let mut m_items = items.clone();
        match mutation {
            0 => m_key.push('x'),
            1 => m_before += 1,
            2 => m_after += 1,
            3 => {
                if m_items.len() >= 2 {
                    let merged = m_items.remove(0) + &m_items.remove(0);
                    m_items.insert(0, merged);
                } else {
                    m_items.push(String::new());
                }
            }
            _ => {
                let i = pick.index(m_items.len());
                match m_items[i].pop() {
                    Some(c) if i + 1 < m_items.len() => m_items[i + 1].insert(0, c),
                    Some(c) => m_items.push(c.to_string()),
                    None => m_items[i].push('x'),
                }
            }
        }
        prop_assert_ne!(original, windowed_encoding(&m_key, m_before, m_after, &m_items));
    }

    #[test]
    fn sha256_hex_is_stable_and_collision_free_on_distinct_inputs(
        a in prop::collection::vec(any::<u8>(), 0..200),
        b in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let ha = identxx::crypto::sha256_hex(&a);
        prop_assert_eq!(ha.clone(), identxx::crypto::sha256_hex(&a));
        if a != b {
            prop_assert_ne!(ha, identxx::crypto::sha256_hex(&b));
        }
    }
}
