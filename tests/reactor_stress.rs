//! Reactor stress test: one `DaemonServer` under ≥ 256 concurrent
//! connections.
//!
//! The tentpole property of the event-driven runtime (DESIGN.md §7): server
//! concurrency is carried by suspended tasks, not OS threads. Every
//! connection below is a spawned client task; the daemon charges an
//! artificial processing delay per answer so all connections are
//! simultaneously in flight — and the process thread count must stay
//! O(workers), where the historical thread-per-connection transport would
//! have parked hundreds of threads.
//!
//! This file is its own integration binary so the thread census isn't
//! polluted by unrelated tests.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use identxx::daemon::Daemon;
use identxx::hostmodel::Host;
use identxx::net::{query_daemon, DaemonServer};
use identxx::prelude::*;

const CONNECTIONS: u16 = 256;
const DAEMON_DELAY: Duration = Duration::from_millis(150);

/// Current thread count of this process, from `/proc/self/status`.
fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|line| {
            line.strip_prefix("Threads:")
                .and_then(|v| v.trim().parse().ok())
        })
        .expect("Threads: line present")
}

#[tokio::test]
async fn two_hundred_fifty_six_connections_bounded_threads() {
    // A daemon that answers every flow (forged identity) after a delay, so
    // each of the 256 connections holds an in-flight exchange long enough
    // for all of them to overlap.
    let mut daemon = Daemon::bare(Host::new("server", Ipv4Addr::new(10, 0, 0, 5)));
    daemon.set_forged_response(Some(vec![
        ("name".to_string(), "httpd".to_string()),
        ("userID".to_string(), "www".to_string()),
    ]));
    daemon.set_response_delay_micros(DAEMON_DELAY.as_micros() as u64);
    let server = DaemonServer::start(daemon, "127.0.0.1:0".parse().unwrap())
        .await
        .unwrap();
    let addr = server.local_addr();

    let peak_threads = Arc::new(AtomicUsize::new(process_threads()));
    let started = Instant::now();
    let handles: Vec<_> = (0..CONNECTIONS)
        .map(|i| {
            tokio::spawn(async move {
                let flow = FiveTuple::tcp(
                    [10, 0, (i / 250) as u8 + 1, (i % 250) as u8 + 1],
                    41_000 + i,
                    [10, 0, 0, 5],
                    80,
                );
                // One connection, one in-flight query per task; the 2 s
                // transport deadline doubles as the per-connection bound.
                query_daemon(addr, Query::new(flow)).await.unwrap()
            })
        })
        .collect();

    // Census while the fan-out is live: sample the thread count a few times
    // mid-flight (the daemon delay keeps exchanges open).
    let census = {
        let peak = Arc::clone(&peak_threads);
        tokio::spawn(async move {
            for _ in 0..8 {
                tokio::time::sleep(DAEMON_DELAY / 8).await;
                peak.fetch_max(process_threads(), Ordering::AcqRel);
            }
        })
    };

    let mut answered = 0usize;
    for handle in handles {
        let response = handle.await.unwrap();
        let response = response.expect("every connection must be answered");
        assert_eq!(response.latest(well_known::APP_NAME), Some("httpd"));
        answered += 1;
    }
    census.await.unwrap();
    let elapsed = started.elapsed();

    assert_eq!(answered, usize::from(CONNECTIONS));
    assert_eq!(server.queries_served(), u64::from(CONNECTIONS));

    // All 256 answers arrived within the transport deadline — and well
    // under 256 serialized daemon delays (≈ 38 s): the delays overlapped as
    // timer events on shared workers. The 10 s bound leaves ~28 s of slack
    // below the serialized floor and ~9.8 s above the concurrent cost
    // (≈ DAEMON_DELAY), so CI scheduler stalls cannot flip it.
    assert!(
        elapsed < Duration::from_secs(10),
        "256 concurrent exchanges must overlap, not serialize (elapsed {elapsed:?})"
    );

    // The core assertion: thread count is O(workers), not O(connections).
    // Budget: worker pool + reactor + test harness + margin — far below the
    // ~512 threads the thread-per-connection design would need (one server
    // thread and one client task thread per connection).
    let peak = peak_threads.load(Ordering::Acquire);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let budget = workers + 16;
    assert!(
        peak <= budget,
        "thread count must stay O(workers): peak {peak} > budget {budget} \
         with {CONNECTIONS} connections in flight"
    );

    server.shutdown();
}
