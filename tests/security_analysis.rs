//! §5 security analysis: what an attacker gains by compromising each component
//! of an ident++-protected network, compared against the baselines' failure
//! modes.

use identxx::baselines::{DistributedFirewall, FlowClassifier};
use identxx::hostmodel::Executable;
use identxx::prelude::*;

const POLICY: &str = "\
block all
pass all with eq(@src[userID], system) with eq(@src[name], backupd) keep state
pass all with eq(@src[name], firefox) keep state
";

fn network(hosts: usize) -> EnterpriseNetwork {
    EnterpriseNetwork::star_with_config(
        hosts,
        ControllerConfig::new().with_control_file("00.control", POLICY),
    )
    .unwrap()
}

fn malware() -> Executable {
    Executable::new("/tmp/worm", "worm", 1, "unknown", "worm")
}

#[test]
fn uncompromised_network_blocks_the_attacker() {
    let mut net = network(6);
    let hosts = net.host_addrs();
    let flow = net.start_app(hosts[0], hosts[1], 445, "mallory", malware());
    assert!(!net.decide(&flow).is_pass());
    assert!(!net.deliver_first_packet(&flow, 0).delivered);
}

#[test]
fn compromised_controller_disables_all_protection() {
    // §5.1: "If the controller is compromised, an attacker can disable all
    // protection in the network."
    let mut net = network(6);
    let hosts = net.host_addrs();
    net.controller_mut().set_compromised(true);
    let flow = net.start_app(hosts[0], hosts[1], 445, "mallory", malware());
    assert!(net.decide(&flow).is_pass());
}

#[test]
fn compromised_switch_passes_traffic_but_not_other_switches() {
    // §5.2: compromising a single switch disables the protection it affords,
    // but other switches keep enforcing.
    let config = ControllerConfig::new().with_control_file("00.control", POLICY);
    let mut net = EnterpriseNetwork::chain(3, config).unwrap();
    let client = Ipv4Addr::new(10, 0, 0, 1);
    let server = Ipv4Addr::new(10, 0, 1, 1);

    // With only the first switch compromised, the packet is forwarded there
    // without consulting the controller, but the next (honest) switch misses,
    // asks the controller, and the flow is blocked.
    let first_switch = *net.switches().keys().next().unwrap();
    net.switch_mut(first_switch).unwrap().set_compromised(true);
    let flow = net.start_app(client, server, 445, "mallory", malware());
    let outcome = net.deliver_first_packet(&flow, 0);
    assert!(!outcome.delivered);

    // With every switch on the path compromised the worm flow sails through —
    // the data plane no longer enforces anything.
    let all: Vec<_> = net.switches().keys().copied().collect();
    for id in all {
        net.switch_mut(id).unwrap().set_compromised(true);
    }
    let flow2 = net.start_app(client, server, 446, "mallory", malware());
    assert!(net.deliver_first_packet(&flow2, 10).delivered);
}

#[test]
fn compromised_end_host_gains_only_what_its_claims_grant() {
    // §5.3: a compromised end-host controls its daemon and can send false
    // responses — it gains the privileges of whatever it claims to be, but
    // other accounts/hosts are not affected and the audit trail persists.
    let mut net = network(8);
    let hosts = net.host_addrs();
    // The attacker's daemon claims to be the system backup service.
    net.daemon_mut(hosts[0])
        .unwrap()
        .set_forged_response(Some(vec![
            ("userID".to_string(), "system".to_string()),
            ("name".to_string(), "backupd".to_string()),
        ]));
    let forged = FiveTuple::tcp(hosts[0], 50000, hosts[1], 445);
    assert!(
        net.decide(&forged).is_pass(),
        "forged identity is accepted (first line of defense only)"
    );

    // Another (honest) host running the worm is still blocked: one compromise
    // does not become a network-wide bypass.
    let honest_flow = net.start_app(hosts[2], hosts[1], 445, "mallory", malware());
    assert!(!net.decide(&honest_flow).is_pass());

    // The administrator can revoke everything the compromised host was
    // granted once the compromise is discovered.
    let revoked = net
        .controller_mut()
        .revoke_where(|r| r.flow.src_ip == hosts[0]);
    assert!(!revoked.is_empty());
}

#[test]
fn compromised_user_application_is_confined_to_that_user() {
    // §5.4: "compromising one user account does not allow the attacker to
    // abuse another user's privileges". Policy: only alice may use the
    // reporting tool toward the finance server.
    let policy = "block all\npass all with eq(@src[userID], alice) with eq(@src[name], reporter) keep state\n";
    let mut net = EnterpriseNetwork::star_with_config(
        6,
        ControllerConfig::new().with_control_file("00.control", policy),
    )
    .unwrap();
    let hosts = net.host_addrs();
    let reporter = Executable::new("/usr/bin/reporter", "reporter", 2, "corp", "reporting");

    // A process compromised while running under bob's account can masquerade
    // as the reporter application, but it still reports bob's user id (the
    // daemon derives it from the process table, not from the application).
    let bob_flow = net.start_app(hosts[1], hosts[0], 9000, "bob", reporter.clone());
    assert!(!net.decide(&bob_flow).is_pass());

    // alice's own use is unaffected.
    let alice_flow = net.start_app(hosts[2], hosts[0], 9000, "alice", reporter);
    assert!(net.decide(&alice_flow).is_pass());
}

#[test]
fn distributed_firewall_comparison_loses_everything_on_receiver_compromise() {
    // §6: "a compromised end-host effectively has no protection" under
    // distributed firewalls, whereas ident++ keeps enforcement in the network.
    let mut dfw = DistributedFirewall::new();
    let victim = Ipv4Addr::new(10, 0, 0, 2);
    dfw.manage_host(victim, &[80]);
    let attack = FiveTuple::tcp([10, 0, 0, 9], 1, victim, 445);
    assert!(!dfw.allow(&attack));
    dfw.set_compromised(victim, true);
    assert!(
        dfw.allow(&attack),
        "distributed firewall collapses with its host"
    );

    // ident++: compromising the victim does not change what the *network*
    // lets the attacker send to it (the policy here blocks the worm port for
    // everyone regardless of what the victim's daemon says).
    let mut net = network(6);
    let hosts = net.host_addrs();
    net.daemon_mut(hosts[1])
        .unwrap()
        .set_forged_response(Some(vec![("name".to_string(), "backupd".to_string())]));
    let flow = net.start_app(hosts[0], hosts[1], 445, "mallory", malware());
    assert!(!net.decide(&flow).is_pass());
}
