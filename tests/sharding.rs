//! Sharding invariants: the consistent-hash router keeps every flow (and
//! everything that could alias it in the state table) on one stable shard,
//! and the sharded / batched decision paths are decision-identical to the
//! single controller deciding one flow at a time.

use identxx::controller::{
    BackendStats, ControllerConfig, FlowDecision, IdentxxController, RecordingBackend, ShardRouter,
    ShardedController,
};
use identxx::pf::{CacheGranularity, Decision};
use identxx::proto::{FiveTuple, IpProtocol, Ipv4Addr};
use proptest::prelude::*;

const GRANULARITIES: [CacheGranularity; 3] = [
    CacheGranularity::ExactFiveTuple,
    CacheGranularity::HostPair,
    CacheGranularity::HostPairDstPort,
];

fn arb_flow() -> impl Strategy<Value = FiveTuple> {
    (
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
        any::<u16>(),
        prop_oneof![Just(6u8), Just(17u8), any::<u8>()],
    )
        .prop_map(|(src, sport, dst, dport, proto)| {
            FiveTuple::new(
                Ipv4Addr(src),
                sport,
                Ipv4Addr(dst),
                dport,
                IpProtocol::from_number(proto),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A flow and its reverse land on the same shard, under every cache
    /// granularity and shard count, and routing is deterministic across
    /// independently built routers.
    #[test]
    fn flow_and_reverse_share_a_shard(flow in arb_flow(), shards in 1usize..9) {
        for granularity in GRANULARITIES {
            let router = ShardRouter::new(shards, granularity);
            let forward = router.route(&flow);
            prop_assert!(forward < shards);
            prop_assert_eq!(forward, router.route(&flow.reversed()),
                "reverse direction re-routed under {:?}", granularity);
            // A freshly built identical router agrees: routing is a pure
            // function of (shards, granularity, flow).
            let rebuilt = ShardRouter::new(shards, granularity);
            prop_assert_eq!(forward, rebuilt.route(&flow));
        }
    }

    /// Flows that can share a state-table entry share a shard: same host
    /// pair and protocol, any ports, any direction.
    #[test]
    fn cache_aliases_are_colocated(flow in arb_flow(), sport in any::<u16>(), dport in any::<u16>()) {
        for granularity in [CacheGranularity::HostPair, CacheGranularity::HostPairDstPort] {
            let router = ShardRouter::new(8, granularity);
            let mut sibling = flow;
            sibling.src_port = sport;
            sibling.dst_port = dport;
            prop_assert_eq!(router.route(&flow), router.route(&sibling));
            prop_assert_eq!(router.route(&flow), router.route(&sibling.reversed()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Growing the ring N → N+1 remaps ≈ 1/(N+1) of sampled keys — every
    /// moved key moves **to** the new member — and no alias group (a flow,
    /// its reverse, its port siblings) is ever split across shards by the
    /// transition: aliases move together or not at all.
    #[test]
    fn growth_remaps_one_over_n_plus_one_and_never_splits_alias_groups(
        flows in prop::collection::vec(arb_flow(), 400..401),
        shards in 1usize..8,
    ) {
        for granularity in GRANULARITIES {
            let before = ShardRouter::new(shards, granularity);
            let after = before.with_added(shards as u64);
            let mut moved = 0usize;
            for flow in &flows {
                let old = before.route(flow);
                let new = after.route(flow);
                if old != new {
                    prop_assert_eq!(new, shards, "a moved key must move to the new member");
                    moved += 1;
                }
                // The alias group transitions atomically: reverse and (for
                // coarse granularities) port siblings agree with the flow
                // both before and after the growth.
                let mut aliases = vec![flow.reversed()];
                if granularity != CacheGranularity::ExactFiveTuple {
                    let mut sibling = *flow;
                    sibling.src_port = flow.src_port.wrapping_add(17);
                    sibling.dst_port = flow.dst_port.wrapping_add(3);
                    aliases.push(sibling);
                    aliases.push(sibling.reversed());
                }
                for alias in aliases {
                    prop_assert_eq!(old, before.route(&alias),
                        "alias split before growth under {:?}", granularity);
                    prop_assert_eq!(new, after.route(&alias),
                        "alias split after growth under {:?}", granularity);
                }
            }
            // ≈ 1/(N+1) of the keys move; the bounds are generous (vnode
            // lumpiness ~1/√512 relative, sampling noise over 400 keys) but
            // rule out both `hash % n`-style reshuffles and a dead member.
            let expected = flows.len() / (shards + 1);
            prop_assert!(moved >= expected / 4,
                "suspiciously few keys moved: {}/{} at {} shards", moved, flows.len(), shards);
            prop_assert!(moved <= (expected * 2).min(flows.len() * 9 / 10),
                "consistent hashing moved too much: {}/{} at {} shards", moved, flows.len(), shards);
        }
    }
}

/// The scripted scenario both equivalence tests run: four hosts, two of
/// them claiming firefox (pass), one claiming an unknown app (block), one
/// silent (fail closed).
fn scripted_backend() -> RecordingBackend {
    RecordingBackend::new()
        .with_answer(
            Ipv4Addr::new(10, 0, 0, 1),
            vec![
                ("name".to_string(), "firefox".to_string()),
                ("userID".to_string(), "alice".to_string()),
            ],
        )
        .with_answer(
            Ipv4Addr::new(10, 0, 0, 2),
            vec![("name".to_string(), "firefox".to_string())],
        )
        .with_answer(
            Ipv4Addr::new(10, 0, 0, 3),
            vec![("name".to_string(), "unknownd".to_string())],
        )
        .with_silent(Ipv4Addr::new(10, 0, 0, 4))
}

fn test_config() -> ControllerConfig {
    ControllerConfig::new()
        .with_control_file(
            "00.control",
            "block all\npass all with eq(@src[name], firefox) keep state\n",
        )
        .with_cache_granularity(CacheGranularity::HostPairDstPort)
}

/// Distinct flows spanning every scripted host, plus repeats in later
/// rounds to exercise the cache.
fn test_flows() -> Vec<FiveTuple> {
    let h = |i: u8| Ipv4Addr::new(10, 0, 0, i);
    vec![
        FiveTuple::tcp(h(1), 41_000, h(2), 80),
        FiveTuple::tcp(h(3), 41_001, h(1), 80), // unknown app → block
        FiveTuple::tcp(h(4), 41_002, h(2), 80), // silent src → fail closed
        FiveTuple::tcp(h(2), 41_003, h(3), 443),
        FiveTuple::tcp(h(1), 41_004, h(4), 22),
        FiveTuple::tcp(h(2), 41_005, h(1), 80), // reverse host pair of flow 0
    ]
}

fn digest(d: &FlowDecision) -> (Decision, Option<usize>, bool, u32) {
    (
        d.verdict.decision,
        d.verdict.matched_line,
        d.from_cache,
        d.queries_issued,
    )
}

/// `decide_batch` (one query round per batch) reproduces the singleton
/// `decide` loop exactly — decisions, backend stats, audit trail, and the
/// per-host query log the recording backend captured.
#[test]
fn batched_rounds_match_singleton_decisions() {
    let mut singleton = IdentxxController::new(test_config())
        .unwrap()
        .with_backend(Box::new(scripted_backend()));
    let mut batched = IdentxxController::new(test_config())
        .unwrap()
        .with_backend(Box::new(scripted_backend()));

    let flows = test_flows();
    // Three rounds; no flow repeats *within* a round (intra-round repeats
    // are the one documented divergence from sequential deciding).
    for (round, chunk) in flows.chunks(2).enumerate() {
        let now = round as u64 * 100;
        let batch = batched.decide_batch(chunk, now);
        for (flow, b) in chunk.iter().zip(&batch) {
            let s = singleton.decide(flow, now);
            assert_eq!(digest(&s), digest(b), "decision diverged for {flow}");
        }
    }
    assert_eq!(singleton.backend_stats(), batched.backend_stats());
    assert_eq!(singleton.audit().records(), batched.audit().records());

    let log = |c: &IdentxxController| {
        c.backend()
            .as_any()
            .downcast_ref::<RecordingBackend>()
            .unwrap()
            .recorded()
            .to_vec()
    };
    assert_eq!(log(&singleton), log(&batched));
}

/// A one-shard `ShardedController` *is* the single controller: identical
/// decisions, stats, and audit for the same flow sequence.
#[test]
fn one_shard_is_decision_identical_to_single_controller() {
    let mut single = IdentxxController::new(test_config())
        .unwrap()
        .with_backend(Box::new(scripted_backend()));
    let mut sharded = ShardedController::new(test_config(), 1)
        .unwrap()
        .with_backends(|_| Box::new(scripted_backend()));

    let flows = test_flows();
    for (i, flow) in flows.iter().enumerate() {
        let now = i as u64 * 10;
        assert_eq!(
            digest(&single.decide(flow, now)),
            digest(&sharded.decide(flow, now)),
            "shards=1 diverged for {flow}"
        );
    }
    assert_eq!(single.backend_stats(), sharded.backend_stats());
    assert_eq!(single.audit().records(), sharded.merged_audit().as_slice());
}

/// Four shards reach the same decisions as one controller; the merged
/// views add up; and every decision really ran on the shard the router
/// names (shard-local audit is the proof).
#[test]
fn four_shards_decide_identically_and_merge_views() {
    let mut single = IdentxxController::new(test_config())
        .unwrap()
        .with_backend(Box::new(scripted_backend()));
    let mut sharded = ShardedController::new(test_config(), 4)
        .unwrap()
        .with_backends(|_| Box::new(scripted_backend()));

    let flows = test_flows();
    // Two passes so the second is cache-warm — shard-local state tables
    // must serve repeats (and reverse flows) exactly like the single
    // controller's.
    for pass in 0u64..2 {
        let now = pass * 1_000;
        let batch = sharded.decide_batch(&flows, now);
        for (flow, b) in flows.iter().zip(&batch) {
            let s = single.decide(flow, now);
            assert_eq!(
                digest(&s),
                digest(b),
                "shards=4 diverged for {flow} on pass {pass}"
            );
        }
    }

    let merged: BackendStats = sharded.backend_stats();
    assert_eq!(single.backend_stats(), merged);
    assert_eq!(single.audit().len(), sharded.audit_len());
    assert_eq!(
        single.audit().total_queries(),
        sharded.total_queries(),
        "merged query accounting must be the sum of the shards"
    );
    assert!(sharded.cache_hit_ratio() > 0.0, "second pass must hit");

    // Each flow's audit records live on exactly the shard the router names.
    for flow in &flows {
        let owner = sharded.shard_for(flow);
        for (index, shard) in (0..sharded.shard_count()).map(|i| (i, sharded.shard(i))) {
            let here = shard
                .audit()
                .records()
                .iter()
                .filter(|r| r.flow == *flow)
                .count();
            if index == owner {
                assert!(here > 0, "owning shard has no record of {flow}");
            } else {
                assert_eq!(here, 0, "shard {index} decided foreign flow {flow}");
            }
        }
    }
}

/// A tier that grows, drains, and shrinks *between rounds of a warm
/// workload* stays decision-identical — including `from_cache` and query
/// accounting — to a tier whose membership never changed, and no state
/// entry is lost or duplicated along the way.
#[test]
fn live_resharding_preserves_decision_identity() {
    let mut fixed = ShardedController::new(test_config(), 3)
        .unwrap()
        .with_backends(|_| Box::new(scripted_backend()));
    let mut elastic = ShardedController::new(test_config(), 3)
        .unwrap()
        .with_backends(|_| Box::new(scripted_backend()));

    let flows = test_flows();
    let compare = |elastic: &mut ShardedController, fixed: &mut ShardedController, now: u64| {
        let e = elastic.decide_batch(&flows, now);
        let f = fixed.decide_batch(&flows, now);
        for ((flow, e), f) in flows.iter().zip(&e).zip(&f) {
            assert_eq!(digest(e), digest(f), "diverged for {flow} at t={now}");
        }
    };

    compare(&mut elastic, &mut fixed, 0); // cold round
    elastic
        .add_shard(Box::new(scripted_backend()))
        .expect("policy recompiles on the new shard");
    compare(&mut elastic, &mut fixed, 100); // warm round on the grown tier
    elastic.drain_shard(0);
    compare(&mut elastic, &mut fixed, 200); // warm round with a drained member
    elastic.remove_shard(0);
    compare(&mut elastic, &mut fixed, 300); // warm round after removal
    assert_eq!(elastic.epoch(), 3, "add + drain + remove = three epochs");

    // Conservation: the churned tier holds exactly as much state as the
    // fixed one, and every entry sits on the shard the router names.
    let count = |tier: &ShardedController| {
        tier.shards()
            .iter()
            .map(|s| s.state_table().len())
            .sum::<usize>()
    };
    assert_eq!(count(&elastic), count(&fixed));
    for (slot, shard) in elastic.shards().iter().enumerate() {
        for (key, _) in shard.state_table().entries() {
            assert_eq!(elastic.shard_for(key), slot, "entry stranded off-owner");
        }
    }
    assert_eq!(elastic.audit_len(), fixed.audit_len());
}

/// Fail-closed mode at the sharded tier: a silent daemon's flow is denied
/// by the explicit fail-closed path (no matched line), the deny is audited
/// on the owning shard with a `fail-closed` policy note, and it is never
/// cached — answered flows keep caching normally.
#[test]
fn fail_closed_denies_silent_hosts_without_caching_the_deny() {
    let config = test_config().with_fail_closed_on_unanswered();
    let mut sharded = ShardedController::new(config, 3)
        .unwrap()
        .with_backends(|_| Box::new(scripted_backend()));

    let h = |i: u8| Ipv4Addr::new(10, 0, 0, i);
    let silent_src = FiveTuple::tcp(h(4), 41_002, h(2), 80); // h4 never answers
    let answered = FiveTuple::tcp(h(1), 41_000, h(2), 80); // firefox → pass

    for round in 0u64..2 {
        let decisions = sharded.decide_batch(&[silent_src, answered], round * 100);
        assert_eq!(decisions[0].verdict.decision, Decision::Block);
        assert_eq!(
            decisions[0].verdict.matched_line, None,
            "fail-closed denies before any rule can match"
        );
        assert!(
            !decisions[0].from_cache,
            "a fail-closed deny must never be served from cache (round {round})"
        );
        assert_eq!(decisions[0].queries_issued, 2);
        assert!(decisions[1].is_pass());
    }
    let owner = sharded.shard_for(&silent_src);
    assert!(
        sharded
            .shard(owner)
            .audit()
            .policy_notes()
            .iter()
            .any(|n| n.category == "fail-closed"),
        "the owning shard must explain the deny with a fail-closed note"
    );
    // Only the pass was cached (one decided flow = the coarse entry plus
    // its exact-tuple secondary under HostPairDstPort granularity); the
    // fail-closed deny left no state anywhere.
    let cached: usize = sharded.shards().iter().map(|s| s.state_table().len()).sum();
    assert_eq!(cached, 2);
    assert!(sharded
        .shards()
        .iter()
        .all(|s| !s.state_table().contains(&silent_src, 300)));
}
