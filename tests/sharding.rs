//! Sharding invariants: the consistent-hash router keeps every flow (and
//! everything that could alias it in the state table) on one stable shard,
//! and the sharded / batched decision paths are decision-identical to the
//! single controller deciding one flow at a time.

use std::sync::{Arc, Mutex};

use identxx::controller::{
    BackendStats, ControllerConfig, DaemonDirectory, FlowDecision, IdentxxController,
    RecordingBackend, ShardRouter, ShardedController, SharedDirectoryBackend,
};
use identxx::daemon::Daemon;
use identxx::hostmodel::Host;
use identxx::pf::{CacheGranularity, Decision};
use identxx::proto::{FiveTuple, IpProtocol, Ipv4Addr};
use proptest::prelude::*;

const GRANULARITIES: [CacheGranularity; 3] = [
    CacheGranularity::ExactFiveTuple,
    CacheGranularity::HostPair,
    CacheGranularity::HostPairDstPort,
];

fn arb_flow() -> impl Strategy<Value = FiveTuple> {
    (
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
        any::<u16>(),
        prop_oneof![Just(6u8), Just(17u8), any::<u8>()],
    )
        .prop_map(|(src, sport, dst, dport, proto)| {
            FiveTuple::new(
                Ipv4Addr(src),
                sport,
                Ipv4Addr(dst),
                dport,
                IpProtocol::from_number(proto),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A flow and its reverse land on the same shard, under every cache
    /// granularity and shard count, and routing is deterministic across
    /// independently built routers.
    #[test]
    fn flow_and_reverse_share_a_shard(flow in arb_flow(), shards in 1usize..9) {
        for granularity in GRANULARITIES {
            let router = ShardRouter::new(shards, granularity);
            let forward = router.route(&flow);
            prop_assert!(forward < shards);
            prop_assert_eq!(forward, router.route(&flow.reversed()),
                "reverse direction re-routed under {:?}", granularity);
            // A freshly built identical router agrees: routing is a pure
            // function of (shards, granularity, flow).
            let rebuilt = ShardRouter::new(shards, granularity);
            prop_assert_eq!(forward, rebuilt.route(&flow));
        }
    }

    /// Flows that can share a state-table entry share a shard: same host
    /// pair and protocol, any ports, any direction.
    #[test]
    fn cache_aliases_are_colocated(flow in arb_flow(), sport in any::<u16>(), dport in any::<u16>()) {
        for granularity in [CacheGranularity::HostPair, CacheGranularity::HostPairDstPort] {
            let router = ShardRouter::new(8, granularity);
            let mut sibling = flow;
            sibling.src_port = sport;
            sibling.dst_port = dport;
            prop_assert_eq!(router.route(&flow), router.route(&sibling));
            prop_assert_eq!(router.route(&flow), router.route(&sibling.reversed()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Growing the ring N → N+1 remaps ≈ 1/(N+1) of sampled keys — every
    /// moved key moves **to** the new member — and no alias group (a flow,
    /// its reverse, its port siblings) is ever split across shards by the
    /// transition: aliases move together or not at all.
    #[test]
    fn growth_remaps_one_over_n_plus_one_and_never_splits_alias_groups(
        flows in prop::collection::vec(arb_flow(), 400..401),
        shards in 1usize..8,
    ) {
        for granularity in GRANULARITIES {
            let before = ShardRouter::new(shards, granularity);
            let after = before.with_added(shards as u64);
            let mut moved = 0usize;
            for flow in &flows {
                let old = before.route(flow);
                let new = after.route(flow);
                if old != new {
                    prop_assert_eq!(new, shards, "a moved key must move to the new member");
                    moved += 1;
                }
                // The alias group transitions atomically: reverse and (for
                // coarse granularities) port siblings agree with the flow
                // both before and after the growth.
                let mut aliases = vec![flow.reversed()];
                if granularity != CacheGranularity::ExactFiveTuple {
                    let mut sibling = *flow;
                    sibling.src_port = flow.src_port.wrapping_add(17);
                    sibling.dst_port = flow.dst_port.wrapping_add(3);
                    aliases.push(sibling);
                    aliases.push(sibling.reversed());
                }
                for alias in aliases {
                    prop_assert_eq!(old, before.route(&alias),
                        "alias split before growth under {:?}", granularity);
                    prop_assert_eq!(new, after.route(&alias),
                        "alias split after growth under {:?}", granularity);
                }
            }
            // ≈ 1/(N+1) of the keys move; the bounds are generous (vnode
            // lumpiness ~1/√512 relative, sampling noise over 400 keys) but
            // rule out both `hash % n`-style reshuffles and a dead member.
            let expected = flows.len() / (shards + 1);
            prop_assert!(moved >= expected / 4,
                "suspiciously few keys moved: {}/{} at {} shards", moved, flows.len(), shards);
            prop_assert!(moved <= (expected * 2).min(flows.len() * 9 / 10),
                "consistent hashing moved too much: {}/{} at {} shards", moved, flows.len(), shards);
        }
    }
}

/// The scripted scenario both equivalence tests run: four hosts, two of
/// them claiming firefox (pass), one claiming an unknown app (block), one
/// silent (fail closed).
fn scripted_backend() -> RecordingBackend {
    RecordingBackend::new()
        .with_answer(
            Ipv4Addr::new(10, 0, 0, 1),
            vec![
                ("name".to_string(), "firefox".to_string()),
                ("userID".to_string(), "alice".to_string()),
            ],
        )
        .with_answer(
            Ipv4Addr::new(10, 0, 0, 2),
            vec![("name".to_string(), "firefox".to_string())],
        )
        .with_answer(
            Ipv4Addr::new(10, 0, 0, 3),
            vec![("name".to_string(), "unknownd".to_string())],
        )
        .with_silent(Ipv4Addr::new(10, 0, 0, 4))
}

fn test_config() -> ControllerConfig {
    ControllerConfig::new()
        .with_control_file(
            "00.control",
            "block all\npass all with eq(@src[name], firefox) keep state\n",
        )
        .with_cache_granularity(CacheGranularity::HostPairDstPort)
}

/// Distinct flows spanning every scripted host, plus repeats in later
/// rounds to exercise the cache.
fn test_flows() -> Vec<FiveTuple> {
    let h = |i: u8| Ipv4Addr::new(10, 0, 0, i);
    vec![
        FiveTuple::tcp(h(1), 41_000, h(2), 80),
        FiveTuple::tcp(h(3), 41_001, h(1), 80), // unknown app → block
        FiveTuple::tcp(h(4), 41_002, h(2), 80), // silent src → fail closed
        FiveTuple::tcp(h(2), 41_003, h(3), 443),
        FiveTuple::tcp(h(1), 41_004, h(4), 22),
        FiveTuple::tcp(h(2), 41_005, h(1), 80), // reverse host pair of flow 0
    ]
}

fn digest(d: &FlowDecision) -> (Decision, Option<usize>, bool, u32) {
    (
        d.verdict.decision,
        d.verdict.matched_line,
        d.from_cache,
        d.queries_issued,
    )
}

/// `decide_batch` (one query round per batch) reproduces the singleton
/// `decide` loop exactly — decisions, backend stats, audit trail, and the
/// per-host query log the recording backend captured.
#[test]
fn batched_rounds_match_singleton_decisions() {
    let mut singleton = IdentxxController::new(test_config())
        .unwrap()
        .with_backend(Box::new(scripted_backend()));
    let mut batched = IdentxxController::new(test_config())
        .unwrap()
        .with_backend(Box::new(scripted_backend()));

    let flows = test_flows();
    // Three rounds; no flow repeats *within* a round (intra-round repeats
    // are the one documented divergence from sequential deciding).
    for (round, chunk) in flows.chunks(2).enumerate() {
        let now = round as u64 * 100;
        let batch = batched.decide_batch(chunk, now);
        for (flow, b) in chunk.iter().zip(&batch) {
            let s = singleton.decide(flow, now);
            assert_eq!(digest(&s), digest(b), "decision diverged for {flow}");
        }
    }
    assert_eq!(singleton.backend_stats(), batched.backend_stats());
    assert_eq!(singleton.audit().records(), batched.audit().records());

    let log = |c: &IdentxxController| {
        c.backend()
            .as_any()
            .downcast_ref::<RecordingBackend>()
            .unwrap()
            .recorded()
            .to_vec()
    };
    assert_eq!(log(&singleton), log(&batched));
}

/// A one-shard `ShardedController` *is* the single controller: identical
/// decisions, stats, and audit for the same flow sequence.
#[test]
fn one_shard_is_decision_identical_to_single_controller() {
    let mut single = IdentxxController::new(test_config())
        .unwrap()
        .with_backend(Box::new(scripted_backend()));
    let mut sharded = ShardedController::new(test_config(), 1)
        .unwrap()
        .with_backends(|_| Box::new(scripted_backend()));

    let flows = test_flows();
    for (i, flow) in flows.iter().enumerate() {
        let now = i as u64 * 10;
        assert_eq!(
            digest(&single.decide(flow, now)),
            digest(&sharded.decide(flow, now)),
            "shards=1 diverged for {flow}"
        );
    }
    assert_eq!(single.backend_stats(), sharded.backend_stats());
    assert_eq!(single.audit().records(), sharded.merged_audit().as_slice());
}

/// Four shards reach the same decisions as one controller; the merged
/// views add up; and every decision really ran on the shard the router
/// names (shard-local audit is the proof).
#[test]
fn four_shards_decide_identically_and_merge_views() {
    let mut single = IdentxxController::new(test_config())
        .unwrap()
        .with_backend(Box::new(scripted_backend()));
    let mut sharded = ShardedController::new(test_config(), 4)
        .unwrap()
        .with_backends(|_| Box::new(scripted_backend()));

    let flows = test_flows();
    // Two passes so the second is cache-warm — shard-local state tables
    // must serve repeats (and reverse flows) exactly like the single
    // controller's.
    for pass in 0u64..2 {
        let now = pass * 1_000;
        let batch = sharded.decide_batch(&flows, now);
        for (flow, b) in flows.iter().zip(&batch) {
            let s = single.decide(flow, now);
            assert_eq!(
                digest(&s),
                digest(b),
                "shards=4 diverged for {flow} on pass {pass}"
            );
        }
    }

    let merged: BackendStats = sharded.backend_stats();
    assert_eq!(single.backend_stats(), merged);
    assert_eq!(single.audit().len(), sharded.audit_len());
    assert_eq!(
        single.audit().total_queries(),
        sharded.total_queries(),
        "merged query accounting must be the sum of the shards"
    );
    assert!(sharded.cache_hit_ratio() > 0.0, "second pass must hit");

    // Each flow's audit records live on exactly the shard the router names.
    for flow in &flows {
        let owner = sharded.shard_for(flow);
        for (index, shard) in (0..sharded.shard_count()).map(|i| (i, sharded.shard(i))) {
            let here = shard
                .audit()
                .records()
                .iter()
                .filter(|r| r.flow == *flow)
                .count();
            if index == owner {
                assert!(here > 0, "owning shard has no record of {flow}");
            } else {
                assert_eq!(here, 0, "shard {index} decided foreign flow {flow}");
            }
        }
    }
}

/// A tier that grows, drains, and shrinks *between rounds of a warm
/// workload* stays decision-identical — including `from_cache` and query
/// accounting — to a tier whose membership never changed, and no state
/// entry is lost or duplicated along the way.
#[test]
fn live_resharding_preserves_decision_identity() {
    let mut fixed = ShardedController::new(test_config(), 3)
        .unwrap()
        .with_backends(|_| Box::new(scripted_backend()));
    let mut elastic = ShardedController::new(test_config(), 3)
        .unwrap()
        .with_backends(|_| Box::new(scripted_backend()));

    let flows = test_flows();
    let compare = |elastic: &mut ShardedController, fixed: &mut ShardedController, now: u64| {
        let e = elastic.decide_batch(&flows, now);
        let f = fixed.decide_batch(&flows, now);
        for ((flow, e), f) in flows.iter().zip(&e).zip(&f) {
            assert_eq!(digest(e), digest(f), "diverged for {flow} at t={now}");
        }
    };

    compare(&mut elastic, &mut fixed, 0); // cold round
    elastic
        .add_shard(Box::new(scripted_backend()))
        .expect("policy recompiles on the new shard");
    compare(&mut elastic, &mut fixed, 100); // warm round on the grown tier
    elastic.drain_shard(0);
    compare(&mut elastic, &mut fixed, 200); // warm round with a drained member
    elastic.remove_shard(0);
    compare(&mut elastic, &mut fixed, 300); // warm round after removal
    assert_eq!(elastic.epoch(), 3, "add + drain + remove = three epochs");

    // Conservation: the churned tier holds exactly as much state as the
    // fixed one, and every entry sits on the shard the router names.
    let count = |tier: &ShardedController| {
        tier.shards()
            .iter()
            .map(|s| s.state_table().len())
            .sum::<usize>()
    };
    assert_eq!(count(&elastic), count(&fixed));
    for (slot, shard) in elastic.shards().iter().enumerate() {
        for (key, _) in shard.state_table().entries() {
            assert_eq!(elastic.shard_for(key), slot, "entry stranded off-owner");
        }
    }
    assert_eq!(elastic.audit_len(), fixed.audit_len());
}

/// Fail-closed mode at the sharded tier: a silent daemon's flow is denied
/// by the explicit fail-closed path (no matched line), the deny is audited
/// on the owning shard with a `fail-closed` policy note, and it is never
/// cached — answered flows keep caching normally.
#[test]
fn fail_closed_denies_silent_hosts_without_caching_the_deny() {
    let config = test_config().with_fail_closed_on_unanswered();
    let mut sharded = ShardedController::new(config, 3)
        .unwrap()
        .with_backends(|_| Box::new(scripted_backend()));

    let h = |i: u8| Ipv4Addr::new(10, 0, 0, i);
    let silent_src = FiveTuple::tcp(h(4), 41_002, h(2), 80); // h4 never answers
    let answered = FiveTuple::tcp(h(1), 41_000, h(2), 80); // firefox → pass

    for round in 0u64..2 {
        let decisions = sharded.decide_batch(&[silent_src, answered], round * 100);
        assert_eq!(decisions[0].verdict.decision, Decision::Block);
        assert_eq!(
            decisions[0].verdict.matched_line, None,
            "fail-closed denies before any rule can match"
        );
        assert!(
            !decisions[0].from_cache,
            "a fail-closed deny must never be served from cache (round {round})"
        );
        assert_eq!(decisions[0].queries_issued, 2);
        assert!(decisions[1].is_pass());
    }
    let owner = sharded.shard_for(&silent_src);
    assert!(
        sharded
            .shard(owner)
            .audit()
            .policy_notes()
            .iter()
            .any(|n| n.category == "fail-closed"),
        "the owning shard must explain the deny with a fail-closed note"
    );
    // Only the pass was cached (one decided flow = the coarse entry plus
    // its exact-tuple secondary under HostPairDstPort granularity); the
    // fail-closed deny left no state anywhere.
    let cached: usize = sharded.shards().iter().map(|s| s.state_table().len()).sum();
    assert_eq!(cached, 2);
    assert!(sharded
        .shards()
        .iter()
        .all(|s| !s.state_table().contains(&silent_src, 300)));
}

// ---------------------------------------------------------------------------
// Population churn (daemons joining and leaving mid-stream)
// ---------------------------------------------------------------------------

/// A live in-process daemon claiming application `app` (its forged response
/// answers any query).
fn churn_daemon(addr: Ipv4Addr, app: &str) -> Daemon {
    let mut daemon = Daemon::bare(Host::new(format!("h{addr}"), addr));
    daemon.set_forged_response(Some(vec![
        ("name".to_string(), app.to_string()),
        ("userID".to_string(), "alice".to_string()),
    ]));
    daemon
}

/// A shared directory seeded with hosts .1–.8: odd hosts claim firefox
/// (pass under [`test_config`]), even ones an unknown app (block).
fn churn_directory() -> Arc<Mutex<DaemonDirectory>> {
    let (directory, _) = SharedDirectoryBackend::fresh();
    {
        let mut directory = directory.lock().unwrap();
        for i in 1u8..=8 {
            let app = if i % 2 == 1 { "firefox" } else { "unknownd" };
            directory.register(churn_daemon(Ipv4Addr::new(10, 0, 0, i), app));
        }
    }
    directory
}

/// A tier of `shards` controllers over (a backend onto) `directory`.
fn tier_over(directory: &Arc<Mutex<DaemonDirectory>>, shards: usize) -> ShardedController {
    ShardedController::new(test_config(), shards)
        .unwrap()
        .with_backends(|_| Box::new(SharedDirectoryBackend::new(Arc::clone(directory))))
}

/// Round-robin flows over hosts .1–.9 (including the not-yet-arrived .9):
/// distinct within a round, so batched and singleton deciding agree.
fn churn_flows(round: u64) -> Vec<FiveTuple> {
    let h = |i: u8| Ipv4Addr::new(10, 0, 0, i);
    (1u8..=9)
        .map(|i| {
            FiveTuple::tcp(
                h(i),
                41_000 + round as u16,
                h(i % 9 + 1),
                if i % 2 == 0 { 80 } else { 443 },
            )
        })
        .collect()
}

/// Daemons joining and leaving mid-stream change *which* flows pass — and
/// nothing else: a 3-shard tier tracks a single controller over an
/// identically-churned population decision-for-decision (including
/// `from_cache` and query accounting), audit records are conserved (one
/// round's worth per round, each on exactly the shard that owns the flow),
/// and the departure/arrival flip the affected flow's verdict in both
/// worlds at the same round boundary.
#[test]
fn population_churn_preserves_decision_identity_and_audit_conservation() {
    let single_dir = churn_directory();
    let tier_dir = churn_directory();
    let mut single = tier_over(&single_dir, 1);
    let mut tier = tier_over(&tier_dir, 3);

    let mut decided = 0usize;
    let mut verdict_of = |round: u64,
                          single: &mut ShardedController,
                          tier: &mut ShardedController|
     -> Vec<Decision> {
        let flows = churn_flows(round);
        let now = round * 1_000;
        let t = tier.decide_batch(&flows, now);
        let mut verdicts = Vec::new();
        for (flow, t) in flows.iter().zip(&t) {
            let s = single.decide(flow, now);
            assert_eq!(
                digest(&s),
                digest(t),
                "churned tier diverged for {flow} at round {round}"
            );
            verdicts.push(t.verdict.decision);
        }
        decided += flows.len();
        verdicts
    };

    // Round 0: h9 has not arrived yet — its flow blocks (no answer under
    // default-deny); h1 (firefox) passes.
    let before = verdict_of(0, &mut single, &mut tier);
    assert_eq!(before[0], Decision::Pass, "h1 claims firefox");
    assert_eq!(before[8], Decision::Block, "h9 is not registered yet");

    // Mid-stream churn through the tier hooks: firefox-claiming h9 arrives,
    // firefox-claiming h1 leaves. Same churn on the reference population.
    let h = |i: u8| Ipv4Addr::new(10, 0, 0, i);
    tier.register_daemon(churn_daemon(h(9), "firefox"));
    assert!(tier.unregister_daemon(h(1)), "h1 was live");
    single.register_daemon(churn_daemon(h(9), "firefox"));
    assert!(single.unregister_daemon(h(1)));

    // Round 1: the arrival passes. h1's pass was cached with `keep state`
    // before it left — flow-table entries outliving the host is the
    // documented cache semantics, and both worlds must agree on it.
    let after = verdict_of(1, &mut single, &mut tier);
    assert_eq!(after[8], Decision::Pass, "arrived h9 must pass");

    // Elastic membership composes with population churn: grow the tier by
    // one shard (over the same shared directory) mid-run, churn again, and
    // decisions still track the single controller.
    tier.add_shard(Box::new(SharedDirectoryBackend::new(Arc::clone(&tier_dir))))
        .expect("policy recompiles on the new shard");
    tier.register_daemon(churn_daemon(h(1), "firefox"));
    single.register_daemon(churn_daemon(h(1), "firefox"));
    assert!(tier.unregister_daemon(h(2)));
    assert!(single.unregister_daemon(h(2)));
    verdict_of(2, &mut single, &mut tier);

    // Conservation: every decision left exactly one audit record, the
    // merged view has all of them, and each sits on the owning shard.
    assert_eq!(tier.audit_len(), decided);
    assert_eq!(single.audit_len(), decided);
    assert_eq!(tier.merged_audit().len(), decided);
    let per_shard: usize = tier.shards().iter().map(|s| s.audit().len()).sum();
    assert_eq!(per_shard, decided, "audit records lost or duplicated");
    for round in 0..3 {
        for flow in churn_flows(round) {
            let owner = tier.shard_for(&flow);
            for (slot, shard) in tier.shards().iter().enumerate() {
                let here = shard
                    .audit()
                    .records()
                    .iter()
                    .filter(|r| r.flow == flow)
                    .count();
                assert_eq!(
                    here,
                    if slot == owner { 1 } else { 0 },
                    "round-{round} record for {flow} misplaced on shard {slot}"
                );
            }
        }
    }

    // Both populations ended at the same size: 8 seeded + h9 − h2.
    assert_eq!(tier_dir.lock().unwrap().len(), 8);
    assert_eq!(single_dir.lock().unwrap().len(), 8);
}

/// The shared-directory churn hooks register once, not once per shard: a
/// daemon arriving through the tier appears exactly once in the shared
/// population, departing removes it for every shard at once, and
/// re-registering after departure is a clean rejoin.
#[test]
fn shared_directory_churn_hooks_are_idempotent_across_shards() {
    let directory = churn_directory();
    let mut tier = tier_over(&directory, 4);
    let addr = Ipv4Addr::new(10, 0, 0, 42);

    tier.register_daemon(churn_daemon(addr, "firefox"));
    assert_eq!(directory.lock().unwrap().len(), 9);
    assert!(tier.unregister_daemon(addr));
    assert!(!tier.unregister_daemon(addr), "double departure");
    assert_eq!(directory.lock().unwrap().len(), 8);
    tier.register_daemon(churn_daemon(addr, "firefox"));
    assert_eq!(directory.lock().unwrap().len(), 9, "rejoin after departure");

    // The flow actually decides through the rejoined daemon on every shard
    // it can route to.
    for sport in [41_000u16, 41_001, 41_002, 41_003] {
        let flow = FiveTuple::tcp(addr, sport, Ipv4Addr::new(10, 0, 0, 2), 80);
        assert!(tier.decide(&flow, 0).is_pass(), "rejoined daemon unheard");
    }
}
