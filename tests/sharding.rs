//! Sharding invariants: the consistent-hash router keeps every flow (and
//! everything that could alias it in the state table) on one stable shard,
//! and the sharded / batched decision paths are decision-identical to the
//! single controller deciding one flow at a time.

use identxx::controller::{
    BackendStats, ControllerConfig, FlowDecision, IdentxxController, RecordingBackend, ShardRouter,
    ShardedController,
};
use identxx::pf::{CacheGranularity, Decision};
use identxx::proto::{FiveTuple, IpProtocol, Ipv4Addr};
use proptest::prelude::*;

const GRANULARITIES: [CacheGranularity; 3] = [
    CacheGranularity::ExactFiveTuple,
    CacheGranularity::HostPair,
    CacheGranularity::HostPairDstPort,
];

fn arb_flow() -> impl Strategy<Value = FiveTuple> {
    (
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
        any::<u16>(),
        prop_oneof![Just(6u8), Just(17u8), any::<u8>()],
    )
        .prop_map(|(src, sport, dst, dport, proto)| {
            FiveTuple::new(
                Ipv4Addr(src),
                sport,
                Ipv4Addr(dst),
                dport,
                IpProtocol::from_number(proto),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A flow and its reverse land on the same shard, under every cache
    /// granularity and shard count, and routing is deterministic across
    /// independently built routers.
    #[test]
    fn flow_and_reverse_share_a_shard(flow in arb_flow(), shards in 1usize..9) {
        for granularity in GRANULARITIES {
            let router = ShardRouter::new(shards, granularity);
            let forward = router.route(&flow);
            prop_assert!(forward < shards);
            prop_assert_eq!(forward, router.route(&flow.reversed()),
                "reverse direction re-routed under {:?}", granularity);
            // A freshly built identical router agrees: routing is a pure
            // function of (shards, granularity, flow).
            let rebuilt = ShardRouter::new(shards, granularity);
            prop_assert_eq!(forward, rebuilt.route(&flow));
        }
    }

    /// Flows that can share a state-table entry share a shard: same host
    /// pair and protocol, any ports, any direction.
    #[test]
    fn cache_aliases_are_colocated(flow in arb_flow(), sport in any::<u16>(), dport in any::<u16>()) {
        for granularity in [CacheGranularity::HostPair, CacheGranularity::HostPairDstPort] {
            let router = ShardRouter::new(8, granularity);
            let mut sibling = flow;
            sibling.src_port = sport;
            sibling.dst_port = dport;
            prop_assert_eq!(router.route(&flow), router.route(&sibling));
            prop_assert_eq!(router.route(&flow), router.route(&sibling.reversed()));
        }
    }
}

/// The scripted scenario both equivalence tests run: four hosts, two of
/// them claiming firefox (pass), one claiming an unknown app (block), one
/// silent (fail closed).
fn scripted_backend() -> RecordingBackend {
    RecordingBackend::new()
        .with_answer(
            Ipv4Addr::new(10, 0, 0, 1),
            vec![
                ("name".to_string(), "firefox".to_string()),
                ("userID".to_string(), "alice".to_string()),
            ],
        )
        .with_answer(
            Ipv4Addr::new(10, 0, 0, 2),
            vec![("name".to_string(), "firefox".to_string())],
        )
        .with_answer(
            Ipv4Addr::new(10, 0, 0, 3),
            vec![("name".to_string(), "unknownd".to_string())],
        )
        .with_silent(Ipv4Addr::new(10, 0, 0, 4))
}

fn test_config() -> ControllerConfig {
    ControllerConfig::new()
        .with_control_file(
            "00.control",
            "block all\npass all with eq(@src[name], firefox) keep state\n",
        )
        .with_cache_granularity(CacheGranularity::HostPairDstPort)
}

/// Distinct flows spanning every scripted host, plus repeats in later
/// rounds to exercise the cache.
fn test_flows() -> Vec<FiveTuple> {
    let h = |i: u8| Ipv4Addr::new(10, 0, 0, i);
    vec![
        FiveTuple::tcp(h(1), 41_000, h(2), 80),
        FiveTuple::tcp(h(3), 41_001, h(1), 80), // unknown app → block
        FiveTuple::tcp(h(4), 41_002, h(2), 80), // silent src → fail closed
        FiveTuple::tcp(h(2), 41_003, h(3), 443),
        FiveTuple::tcp(h(1), 41_004, h(4), 22),
        FiveTuple::tcp(h(2), 41_005, h(1), 80), // reverse host pair of flow 0
    ]
}

fn digest(d: &FlowDecision) -> (Decision, Option<usize>, bool, u32) {
    (
        d.verdict.decision,
        d.verdict.matched_line,
        d.from_cache,
        d.queries_issued,
    )
}

/// `decide_batch` (one query round per batch) reproduces the singleton
/// `decide` loop exactly — decisions, backend stats, audit trail, and the
/// per-host query log the recording backend captured.
#[test]
fn batched_rounds_match_singleton_decisions() {
    let mut singleton = IdentxxController::new(test_config())
        .unwrap()
        .with_backend(Box::new(scripted_backend()));
    let mut batched = IdentxxController::new(test_config())
        .unwrap()
        .with_backend(Box::new(scripted_backend()));

    let flows = test_flows();
    // Three rounds; no flow repeats *within* a round (intra-round repeats
    // are the one documented divergence from sequential deciding).
    for (round, chunk) in flows.chunks(2).enumerate() {
        let now = round as u64 * 100;
        let batch = batched.decide_batch(chunk, now);
        for (flow, b) in chunk.iter().zip(&batch) {
            let s = singleton.decide(flow, now);
            assert_eq!(digest(&s), digest(b), "decision diverged for {flow}");
        }
    }
    assert_eq!(singleton.backend_stats(), batched.backend_stats());
    assert_eq!(singleton.audit().records(), batched.audit().records());

    let log = |c: &IdentxxController| {
        c.backend()
            .as_any()
            .downcast_ref::<RecordingBackend>()
            .unwrap()
            .recorded()
            .to_vec()
    };
    assert_eq!(log(&singleton), log(&batched));
}

/// A one-shard `ShardedController` *is* the single controller: identical
/// decisions, stats, and audit for the same flow sequence.
#[test]
fn one_shard_is_decision_identical_to_single_controller() {
    let mut single = IdentxxController::new(test_config())
        .unwrap()
        .with_backend(Box::new(scripted_backend()));
    let mut sharded = ShardedController::new(test_config(), 1)
        .unwrap()
        .with_backends(|_| Box::new(scripted_backend()));

    let flows = test_flows();
    for (i, flow) in flows.iter().enumerate() {
        let now = i as u64 * 10;
        assert_eq!(
            digest(&single.decide(flow, now)),
            digest(&sharded.decide(flow, now)),
            "shards=1 diverged for {flow}"
        );
    }
    assert_eq!(single.backend_stats(), sharded.backend_stats());
    assert_eq!(single.audit().records(), sharded.merged_audit().as_slice());
}

/// Four shards reach the same decisions as one controller; the merged
/// views add up; and every decision really ran on the shard the router
/// names (shard-local audit is the proof).
#[test]
fn four_shards_decide_identically_and_merge_views() {
    let mut single = IdentxxController::new(test_config())
        .unwrap()
        .with_backend(Box::new(scripted_backend()));
    let mut sharded = ShardedController::new(test_config(), 4)
        .unwrap()
        .with_backends(|_| Box::new(scripted_backend()));

    let flows = test_flows();
    // Two passes so the second is cache-warm — shard-local state tables
    // must serve repeats (and reverse flows) exactly like the single
    // controller's.
    for pass in 0u64..2 {
        let now = pass * 1_000;
        let batch = sharded.decide_batch(&flows, now);
        for (flow, b) in flows.iter().zip(&batch) {
            let s = single.decide(flow, now);
            assert_eq!(
                digest(&s),
                digest(b),
                "shards=4 diverged for {flow} on pass {pass}"
            );
        }
    }

    let merged: BackendStats = sharded.backend_stats();
    assert_eq!(single.backend_stats(), merged);
    assert_eq!(single.audit().len(), sharded.audit_len());
    assert_eq!(
        single.audit().total_queries(),
        sharded.total_queries(),
        "merged query accounting must be the sum of the shards"
    );
    assert!(sharded.cache_hit_ratio() > 0.0, "second pass must hit");

    // Each flow's audit records live on exactly the shard the router names.
    for flow in &flows {
        let owner = sharded.shard_for(flow);
        for (index, shard) in (0..sharded.shard_count()).map(|i| (i, sharded.shard(i))) {
            let here = shard
                .audit()
                .records()
                .iter()
                .filter(|r| r.flow == *flow)
                .count();
            if index == owner {
                assert!(here > 0, "owning shard has no record of {flow}");
            } else {
                assert_eq!(here, 0, "shard {index} decided foreign flow {flow}");
            }
        }
    }
}
