//! A hermetic, API-compatible stand-in for the parts of the `bytes` crate
//! this workspace uses. The real crate is a crates.io dependency; this
//! workspace builds without network access, so the subset `identxx-net`
//! needs (`BytesMut` as a growable read buffer) is implemented here over a
//! plain `Vec<u8>`. See DESIGN.md §2 for the substitution policy.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer supporting cheap-enough front consumption.
///
/// Unlike the real `BytesMut` this is not reference-counted and `split_to`
/// copies; the protocol frames involved are small (≤128 KiB) and the
/// workspace only uses it as a read-accumulation buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with at least `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends `extend` to the end of the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Removes and returns the first `at` bytes, keeping the rest.
    ///
    /// Panics when `at > len`, matching the real crate.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.inner.len(), "split_to out of bounds");
        let rest = self.inner.split_off(at);
        let head = std::mem::replace(&mut self.inner, rest);
        BytesMut { inner: head }
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<&[u8]> for BytesMut {
    fn from(slice: &[u8]) -> BytesMut {
        BytesMut {
            inner: slice.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_consumes_front() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"hello world");
        let head = buf.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&buf[..], b"world");
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn deref_exposes_slice() {
        let mut buf = BytesMut::with_capacity(8);
        assert!(buf.is_empty());
        buf.extend_from_slice(&[1, 2, 3]);
        assert_eq!(&*buf, &[1, 2, 3]);
    }
}
