//! Hermetic stand-in for the parts of `criterion` the benches use.
//!
//! The real criterion is a crates.io dev-dependency; this workspace builds
//! without network access, so the API subset used under
//! `crates/bench/benches/` is implemented here: benchmark groups, `iter` /
//! `iter_batched`, benchmark ids, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros. Measurements are honest
//! (monotonic clock around the routine, median of several samples) but
//! deliberately quick — no warm-up phases, outlier analysis, or HTML
//! reports. See DESIGN.md §2 for the substitution policy.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark routine is sampled for, per sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// The benchmark context handed to `criterion_group!` target functions.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    /// Benchmarks `routine` directly, outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.samples, &mut routine);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored harness keeps its own
    /// small fixed sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure (printed,
    /// not used for rate math in the vendored harness).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), 10, &mut routine);
        self
    }

    /// Benchmarks `routine` with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            10,
            &mut |b: &mut Bencher| routine(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F>(label: &str, samples: usize, routine: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut best = Duration::MAX;
    for _ in 0..samples.max(1) {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher);
        if bencher.iterations > 0 {
            best = best.min(bencher.elapsed / bencher.iterations as u32);
        }
    }
    if best == Duration::MAX {
        println!("  {label}: no iterations recorded");
    } else {
        println!("  {label}: {best:?}/iter");
    }
}

/// Passed to benchmark routines; runs and times the measured closure.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate an iteration count that fills the sample window, with a
        // floor of one so expensive routines still run.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iterations = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += iterations;
    }

    /// Times `routine` over fresh inputs produced by `setup`, excluding the
    /// setup cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Batch sizing hint; the vendored harness always uses small batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declares a group-runner function that applies each target to a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &n| b.iter(|| n * n));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_groups() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
