//! `any::<T>()` support for the primitive types the workspace draws.

use std::marker::PhantomData;

use crate::strategy::Any;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (full value range for integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: PhantomData,
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::new(rng.next_u64() as usize)
    }
}
