//! Hermetic stand-in for the parts of `proptest` this workspace uses.
//!
//! The real proptest is a crates.io dev-dependency; this workspace builds
//! without network access, so the subset `tests/properties.rs` needs is
//! implemented here: composable strategies (`any`, ranges, regex-like
//! string patterns, tuples, `prop_map`, `Just`, unions, collections), the
//! `proptest!` test-definition macro, and the `prop_assert*` / `prop_assume`
//! family. Failing inputs are reported but *not shrunk* — shrinking is the
//! main capability deliberately left out. See DESIGN.md §2.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Differences from real proptest: no persistence of failing seeds and no
/// shrinking; the RNG seed is derived deterministically from the test name,
/// so failures reproduce run-to-run.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    (@config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(16);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $( let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng); )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!(
                                "property {} falsified after {} passing case(s): {}",
                                stringify!($name), accepted, message
                            );
                        }
                    }
                }
                assert!(
                    accepted >= config.cases,
                    "property {} rejected too many inputs ({} accepted of {} attempts)",
                    stringify!($name), accepted, attempts
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// A uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    left, right, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left != right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Discards the current test case (does not count toward the case budget)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0usize..3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn mapped_values_follow(x in (0u8..100).prop_map(|v| v as u32 * 2)) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x < 200);
        }

        #[test]
        fn string_pattern_obeys_charset(s in "[a-c]{1,5}") {
            prop_assert!(!s.is_empty() && s.len() <= 5, "bad len: {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vectors_obey_size(v in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn oneof_hits_every_arm(x in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn assume_discards_without_failing(x in 0u8..10) {
            prop_assume!(x != 5);
            prop_assert_ne!(x, 5);
        }

        #[test]
        fn index_is_in_range(idx in any::<prop::sample::Index>(), len in 1usize..9) {
            prop_assert!(idx.index(len) < len);
        }

        #[test]
        fn tuples_compose(pair in (0u8..4, "[x-z]")) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        // No #[test] meta on the inner fn: it is invoked directly below.
        proptest! {
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200);
            }
        }
        always_fails();
    }
}
