//! Sampling helpers (`prop::sample`).

/// An index into a collection whose size is unknown at generation time;
/// resolved against a concrete length with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: usize,
}

impl Index {
    pub(crate) fn new(raw: usize) -> Index {
        Index { raw }
    }

    /// Resolves against a collection of `len` elements; `len` must be > 0.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        self.raw % len
    }
}
