//! The `Strategy` trait and the combinators the workspace uses.

use std::marker::PhantomData;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree: strategies generate final
/// values directly and failures are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            strategy: self,
            map,
        }
    }

    /// Type-erases the strategy so differently-typed strategies can mix.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always generates a clone of the held value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies with a common value type (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Strategy drawing uniformly from a half-open integer range.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String-pattern strategies: a `&str` is interpreted as the regex subset
/// described in [`crate::string`].
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::Pattern::parse(self).generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $index:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Strategy produced by [`crate::arbitrary::any`].
pub struct Any<T> {
    pub(crate) marker: PhantomData<T>,
}

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
