//! The regex subset backing `&str` strategies.
//!
//! Supported syntax — exactly what the workspace's patterns need:
//! character classes with ranges and `\`-escapes (`[a-zA-Z0-9_-]`,
//! `[ -~\n\\]`), literal characters, and `{m}` / `{m,n}` repetition.
//! Anything else (alternation, groups, `*`/`+`/`?`) is rejected loudly
//! rather than mis-generated.

use crate::test_runner::TestRng;

/// A parsed pattern: a sequence of repeated character choices.
pub struct Pattern {
    atoms: Vec<Atom>,
}

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

impl Pattern {
    /// Parses `pattern`, panicking on unsupported syntax.
    pub fn parse(pattern: &str) -> Pattern {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = read_char(&chars, &mut i);
                        let is_range =
                            i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']';
                        if is_range {
                            i += 1;
                            let hi = read_char(&chars, &mut i);
                            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                            set.extend(lo..=hi);
                        } else {
                            set.push(lo);
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // consume ']'
                    assert!(!set.is_empty(), "empty class in {pattern:?}");
                    set
                }
                '*' | '+' | '?' | '(' | ')' | '|' => {
                    panic!(
                        "unsupported regex syntax {:?} in pattern {pattern:?}",
                        chars[i]
                    )
                }
                _ => vec![read_char(&chars, &mut i)],
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                parse_repeat(&chars, &mut i, pattern)
            } else {
                (1, 1)
            };
            atoms.push(Atom { choices, min, max });
        }
        Pattern { atoms }
    }

    /// Draws one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Reads one (possibly escaped) character, advancing `i`.
fn read_char(chars: &[char], i: &mut usize) -> char {
    let c = chars[*i];
    *i += 1;
    if c != '\\' {
        return c;
    }
    let escaped = chars[*i];
    *i += 1;
    match escaped {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

/// Parses `{m}` or `{m,n}` starting at `i` (which points at `{`).
fn parse_repeat(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    *i += 1; // consume '{'
    let mut digits = String::new();
    let mut min: Option<usize> = None;
    loop {
        assert!(*i < chars.len(), "unterminated repetition in {pattern:?}");
        match chars[*i] {
            '}' => {
                *i += 1;
                let last: usize = digits
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repetition count in {pattern:?}"));
                return match min {
                    Some(m) => (m, last),
                    None => (last, last),
                };
            }
            ',' => {
                min = Some(
                    digits
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repetition count in {pattern:?}")),
                );
                digits.clear();
                *i += 1;
            }
            d if d.is_ascii_digit() => {
                digits.push(d);
                *i += 1;
            }
            other => panic!("unexpected {other:?} in repetition of {pattern:?}"),
        }
    }
}
