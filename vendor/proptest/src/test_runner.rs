//! Test-run configuration, case outcomes, and the deterministic RNG.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// A discarded case.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

/// Deterministic xoshiro256** generator seeded from the test name, so a
/// failure reproduces on every run without seed persistence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary label (FNV-1a into SplitMix64 expansion).
    pub fn deterministic(label: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = hash;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[1].wrapping_mul(5)).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is negligible for the bounds used in tests.
        self.next_u64() % bound
    }
}
