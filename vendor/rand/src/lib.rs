//! A hermetic, API-compatible stand-in for the parts of the `rand` crate
//! this workspace uses: `StdRng` seeded with `seed_from_u64`, and
//! `Rng::{gen_range, gen_bool}` over integer ranges. The workload generator
//! only needs a deterministic, well-mixed PRNG — cryptographic quality is
//! explicitly *not* required there (seeds are experiment parameters).
//!
//! The generator is xoshiro256** seeded via SplitMix64, the same
//! construction the real `rand` ecosystem popularized. See DESIGN.md §2 for
//! the substitution policy.

pub mod rngs {
    /// A deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = (self.s[1].wrapping_mul(5)).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 to fill the xoshiro state, as recommended by its authors.
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

/// Types that can be drawn uniformly from a half-open `low..high` range.
pub trait SampleUniform: Copy {
    fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut StdRng, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is negligible for the small spans the workload
                // generator uses (all ≪ 2^32) and irrelevant to determinism.
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Draws a value uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T;

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of precision, like the real implementation's f64 path.
        let draw = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        draw < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..16).map(|_| a.gen_range(0..1_000_000)).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u16..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
