//! Hermetic stand-in for the `tokio-macros` proc-macro crate.
//!
//! Expands `#[tokio::main]` and `#[tokio::test]` on an `async fn` into a
//! plain `fn` that drives the body with `tokio::runtime::block_on`. Flavor
//! arguments (`#[tokio::main(flavor = "current_thread")]`) are accepted and
//! ignored — the vendored runtime has a single flavor.
//!
//! Implemented with token-string surgery instead of `syn`/`quote` (which
//! are unavailable offline): the attribute's input is a single `async fn`
//! item, so locating the `async` keyword and the body block textually is
//! reliable.

use proc_macro::TokenStream;

#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    transform(item, false)
}

#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    transform(item, true)
}

fn transform(item: TokenStream, is_test: bool) -> TokenStream {
    let src = item.to_string();
    let Some(async_pos) = find_async_fn(&src) else {
        panic!("#[tokio::main]/#[tokio::test] may only be applied to an `async fn`");
    };
    // Everything before `async` (attributes, doc comments, visibility) is
    // preserved; the `async` keyword itself is dropped.
    let prefix = &src[..async_pos];
    let after_async = src[async_pos..].strip_prefix("async").unwrap();
    // The body is the outermost brace block; the signature (name, args,
    // return type) is everything up to it. A return type cannot contain a
    // bare `{`, so the first `{` after the signature opens the body.
    let brace = after_async.find('{').expect("async fn has no body block");
    let signature = &after_async[..brace];
    let body = &after_async[brace..];
    let test_attr = if is_test { "#[test]\n" } else { "" };
    let out =
        format!("{test_attr}{prefix}{signature} {{ tokio::runtime::block_on(async move {body}) }}");
    out.parse().expect("generated fn failed to re-parse")
}

/// Byte offset of the `async` keyword that introduces the function, skipping
/// anything inside attribute brackets or string literals in doc attributes.
fn find_async_fn(src: &str) -> Option<usize> {
    let bytes = src.as_bytes();
    let mut depth = 0usize; // inside #[...] attribute groups
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'[' => depth += 1,
            b']' => depth = depth.saturating_sub(1),
            b'a' if depth == 0
                && src[i..].starts_with("async")
                && src[i + 5..].trim_start().starts_with("fn")
                && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric() && bytes[i - 1] != b'_') =>
            {
                return Some(i);
            }
            _ => {}
        }
        i += 1;
    }
    None
}
