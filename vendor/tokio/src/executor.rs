//! The multi-worker task executor behind [`crate::spawn`].
//!
//! Tasks are reference-counted futures with the classic four-state waker
//! machine (idle / scheduled / running / notified): a wake on an idle task
//! pushes it onto the shared injector queue, a wake mid-poll flags it for
//! requeue, and duplicate wakes collapse. A fixed pool of worker threads
//! (`IDENTXX_WORKERS`, default `max(2, available_parallelism)`) drains the
//! queue — so the thread count is O(workers) no matter how many tasks (one
//! per server connection, say) are live, which is the reactor's whole point.
//!
//! [`JoinHandle::abort`] genuinely cancels: it marks the task aborted and
//! schedules it; whichever worker dequeues it next **drops the future
//! instead of polling it** (releasing its sockets, timers, and buffers) and
//! completes the join handle with a cancelled [`JoinError`]. A task mid-poll
//! finishes its current poll first — cancellation lands at the next yield
//! point, which is at most one readiness event away because every I/O future
//! in this runtime yields on `WouldBlock`.
//!
//! ## The threaded baseline
//!
//! Setting `IDENTXX_RUNTIME=threaded` switches `spawn` to one OS thread per
//! task (driven by [`crate::runtime::block_on`]), reproducing the runtime's
//! historical thread-per-task architecture over the same non-blocking I/O.
//! Experiments use it as the comparison row (EXPERIMENTS.md E10); `abort`
//! in that mode detaches instead of cancelling, which is exactly the
//! documented historical semantics.

use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::task::{Context, Poll, Wake, Waker};

const IDLE: u8 = 0;
const SCHEDULED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const COMPLETE: u8 = 4;

/// Why a spawned task failed to produce its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JoinErrorKind {
    Panicked,
    Cancelled,
}

/// Error returned when awaiting a task that panicked or was aborted.
#[derive(Debug)]
pub struct JoinError {
    kind: JoinErrorKind,
}

impl JoinError {
    pub(crate) fn panicked() -> JoinError {
        JoinError {
            kind: JoinErrorKind::Panicked,
        }
    }

    pub(crate) fn cancelled() -> JoinError {
        JoinError {
            kind: JoinErrorKind::Cancelled,
        }
    }

    /// Whether the task was cancelled via [`JoinHandle::abort`].
    pub fn is_cancelled(&self) -> bool {
        self.kind == JoinErrorKind::Cancelled
    }

    /// Whether the task panicked.
    pub fn is_panic(&self) -> bool {
        self.kind == JoinErrorKind::Panicked
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            JoinErrorKind::Panicked => write!(f, "spawned task panicked"),
            JoinErrorKind::Cancelled => write!(f, "task was cancelled"),
        }
    }
}

impl std::error::Error for JoinError {}

/// Output slot + waker shared between a task and its [`JoinHandle`].
struct JoinInner<T> {
    result: Option<Result<T, JoinError>>,
    waker: Option<Waker>,
}

pub(crate) struct JoinState<T> {
    inner: Mutex<JoinInner<T>>,
}

impl<T> JoinState<T> {
    fn new() -> JoinState<T> {
        JoinState {
            inner: Mutex::new(JoinInner {
                result: None,
                waker: None,
            }),
        }
    }

    fn complete(&self, result: Result<T, JoinError>) {
        let waker = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.result.is_none() {
                inner.result = Some(result);
            }
            inner.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

type BoxedFuture = Pin<Box<dyn Future<Output = ()> + Send>>;

/// A pool-scheduled task: the erased future plus its waker state machine.
struct Task {
    future: Mutex<Option<BoxedFuture>>,
    state: AtomicU8,
    aborted: AtomicBool,
    /// Completes the (type-erased) join state abnormally — on panic or abort.
    fail: Box<dyn Fn(JoinError) + Send + Sync>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        schedule(self);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        schedule(Arc::clone(self));
    }
}

fn schedule(task: Arc<Task>) {
    loop {
        match task.state.load(Ordering::Acquire) {
            IDLE => {
                if task
                    .state
                    .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    pool().push(task);
                    return;
                }
            }
            RUNNING => {
                if task
                    .state
                    .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return;
                }
            }
            // Already queued, already flagged, or finished.
            _ => return,
        }
    }
}

fn run(task: Arc<Task>) {
    if task.aborted.load(Ordering::Acquire) {
        // Cancellation: drop the future without polling it (closing its
        // sockets and timers) and fail the join handle.
        *task.future.lock().unwrap_or_else(|e| e.into_inner()) = None;
        task.state.store(COMPLETE, Ordering::Release);
        (task.fail)(JoinError::cancelled());
        return;
    }
    task.state.store(RUNNING, Ordering::Release);
    let waker = Waker::from(Arc::clone(&task));
    let mut cx = Context::from_waker(&waker);
    let polled = {
        let mut slot = task.future.lock().unwrap_or_else(|e| e.into_inner());
        let Some(future) = slot.as_mut() else {
            task.state.store(COMPLETE, Ordering::Release);
            return;
        };
        catch_unwind(AssertUnwindSafe(|| future.as_mut().poll(&mut cx)))
    };
    match polled {
        Ok(Poll::Ready(())) => {
            // The wrapped future already delivered its output to the join
            // state before returning Ready.
            *task.future.lock().unwrap_or_else(|e| e.into_inner()) = None;
            task.state.store(COMPLETE, Ordering::Release);
        }
        Ok(Poll::Pending) => loop {
            if task
                .state
                .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // An abort can land in the window between this worker
                // dequeuing the task and the RUNNING store above — its
                // schedule() saw the stale SCHEDULED state and no-opped,
                // and the pre-poll aborted check had already passed. If the
                // task now parks with no future wake coming (a silent
                // peer), that abort would be lost forever; re-check and
                // reschedule so cancellation always lands.
                if task.aborted.load(Ordering::Acquire) {
                    schedule(Arc::clone(&task));
                }
                break;
            }
            // A wake arrived mid-poll: requeue.
            if task
                .state
                .compare_exchange(NOTIFIED, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                pool().push(Arc::clone(&task));
                break;
            }
        },
        Err(_panic) => {
            *task.future.lock().unwrap_or_else(|e| e.into_inner()) = None;
            task.state.store(COMPLETE, Ordering::Release);
            (task.fail)(JoinError::panicked());
        }
    }
}

struct Pool {
    queue: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
}

impl Pool {
    fn push(&self, task: Arc<Task>) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
        self.available.notify_one();
    }

    fn pop(&self) -> Arc<Task> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(task) = queue.pop_front() {
                return task;
            }
            queue = self
                .available
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();

/// Worker-thread count: `IDENTXX_WORKERS`, else `max(2, parallelism)` — at
/// least two so short blocking sections (daemon locks) overlap even on a
/// single-core container.
pub(crate) fn worker_count() -> usize {
    if let Some(n) = std::env::var("IDENTXX_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| *n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        for i in 0..worker_count() {
            std::thread::Builder::new()
                .name(format!("idx-worker-{i}"))
                .spawn(move || loop {
                    run(pool.pop());
                })
                .expect("spawn worker thread");
        }
        pool
    })
}

/// Handle to a spawned task: await it for the output, or [`abort`] it.
///
/// [`abort`]: JoinHandle::abort
pub struct JoinHandle<T> {
    join: Arc<JoinState<T>>,
    /// `None` under the threaded baseline, where abort detaches.
    task: Option<Arc<Task>>,
}

impl<T> JoinHandle<T> {
    /// Requests cancellation. On the reactor runtime the task's future is
    /// dropped at its next yield point (at the latest, the next time a worker
    /// dequeues it) and awaiting the handle yields a cancelled [`JoinError`].
    /// Under the `IDENTXX_RUNTIME=threaded` baseline the task cannot be
    /// interrupted and is detached instead — the historical stand-in
    /// semantics the baseline exists to measure.
    pub fn abort(&self) {
        if let Some(task) = &self.task {
            task.aborted.store(true, Ordering::Release);
            schedule(Arc::clone(task));
        }
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.join.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(result) = inner.result.take() {
            return Poll::Ready(result);
        }
        match inner.waker.as_ref() {
            Some(current) if current.will_wake(cx.waker()) => {}
            _ => inner.waker = Some(cx.waker().clone()),
        }
        Poll::Pending
    }
}

/// Spawns a future: onto the worker pool normally, or onto its own OS thread
/// under the `IDENTXX_RUNTIME=threaded` baseline.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let join = Arc::new(JoinState::new());
    if crate::runtime::threaded_baseline() {
        let state = Arc::clone(&join);
        std::thread::Builder::new()
            .name("idx-task".into())
            .spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| crate::runtime::block_on(future)));
                state.complete(result.map_err(|_| JoinError::panicked()));
            })
            .expect("spawn task thread");
        return JoinHandle { join, task: None };
    }
    let state = Arc::clone(&join);
    let wrapped = async move {
        state.complete(Ok(future.await));
    };
    let fail_state = Arc::clone(&join);
    let task = Arc::new(Task {
        future: Mutex::new(Some(Box::pin(wrapped))),
        state: AtomicU8::new(IDLE),
        aborted: AtomicBool::new(false),
        fail: Box::new(move |err| fail_state.complete(Err(err))),
    });
    schedule(Arc::clone(&task));
    JoinHandle {
        join,
        task: Some(task),
    }
}
