//! Hermetic stand-in for the parts of `tokio` this workspace uses — now a
//! real event-driven runtime, not a thread-per-task façade.
//!
//! The runtime has three moving parts (DESIGN.md §7):
//!
//! * a **reactor** (`reactor`/`sys`, private): one background thread running
//!   an `epoll` loop over every socket (registered non-blocking and
//!   edge-triggered), translating readiness into waker calls, and driving
//!   the **timer wheel** (`timer`) that backs [`time::sleep`] /
//!   [`time::timeout`] — so a timeout genuinely preempts a read blocked on a
//!   dead peer;
//! * an **executor** (`executor`): a fixed pool of worker threads
//!   (`IDENTXX_WORKERS`, default `max(2, parallelism)`) polling spawned
//!   tasks — thread count is O(workers), not O(tasks), and
//!   [`task::JoinHandle::abort`] genuinely cancels by dropping the future at
//!   its next yield point;
//! * the **blocking boundary** ([`runtime::block_on`]): synchronous callers
//!   (the controller's decision path, tests) drive a future on their own
//!   thread with a park/unpark waker; the reactor wakes them like any task.
//!
//! Setting `IDENTXX_RUNTIME=threaded` restores the historical
//! thread-per-task `spawn` over the same non-blocking I/O — the comparison
//! baseline for the E10 experiment (EXPERIMENTS.md).
//!
//! The public surface stays the real tokio API (`net::TcpListener`,
//! `io::AsyncReadExt`, `time::timeout`, `#[tokio::main]` / `#[tokio::test]`
//! re-exported from the vendored `tokio-macros`), so swapping in the
//! crates.io crate remains a manifest-only change; [`future::join_all`] and
//! [`runtime::threaded_baseline`] are the two documented extensions beyond
//! it. See DESIGN.md §2 for the substitution policy.

#![deny(unsafe_op_in_unsafe_fn)]

mod executor;
mod reactor;
mod sys;
mod timer;

pub mod net;

pub use executor::spawn;
pub use tokio_macros::{main, test};

pub mod runtime {
    //! Entry points for driving futures from synchronous code.

    use std::future::Future;
    use std::pin::pin;
    use std::sync::Arc;
    use std::task::{Context, Poll, Wake, Waker};
    use std::thread::{self, Thread};
    use std::time::Duration;

    struct ThreadWaker(Thread);

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }

    /// Drives a future to completion on the calling thread.
    ///
    /// Parks between polls; the reactor (I/O readiness, timer deadlines) and
    /// the executor (join handles) unpark it through the waker. A generous
    /// park timeout backstops against any lost wake without busy-polling.
    pub fn block_on<F: Future>(future: F) -> F::Output {
        let mut future = pin!(future);
        let waker = Waker::from(Arc::new(ThreadWaker(thread::current())));
        let mut cx = Context::from_waker(&waker);
        loop {
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(value) => return value,
                Poll::Pending => thread::park_timeout(Duration::from_millis(100)),
            }
        }
    }

    /// Whether the process runs the thread-per-task **baseline** instead of
    /// the worker-pool executor (`IDENTXX_RUNTIME=threaded`). Read per call,
    /// so an experiment can flip modes between measurement rows. Affects
    /// [`crate::spawn`] (and the query plane's fan-out strategy in
    /// `identxx-controller`); I/O stays reactor-driven in both modes.
    pub fn threaded_baseline() -> bool {
        std::env::var_os("IDENTXX_RUNTIME").is_some_and(|v| v == "threaded")
    }
}

pub mod task {
    //! Spawned-task handles.

    pub use crate::executor::{JoinError, JoinHandle};
}

pub mod future {
    //! Future combinators (the `futures-util` subset this workspace needs).

    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};

    /// Future returned by [`join_all`].
    pub struct JoinAll<F: Future> {
        futures: Vec<Option<Pin<Box<F>>>>,
        results: Vec<Option<F::Output>>,
        pending: usize,
    }

    impl<F: Future> Unpin for JoinAll<F> {}

    impl<F: Future> Future for JoinAll<F> {
        type Output = Vec<F::Output>;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let this = &mut *self;
            for i in 0..this.futures.len() {
                if let Some(future) = this.futures[i].as_mut() {
                    if let Poll::Ready(value) = future.as_mut().poll(cx) {
                        this.results[i] = Some(value);
                        this.futures[i] = None;
                        this.pending -= 1;
                    }
                }
            }
            if this.pending > 0 {
                return Poll::Pending;
            }
            Poll::Ready(
                this.results
                    .iter_mut()
                    .map(|slot| slot.take().expect("every future completed"))
                    .collect(),
            )
        }
    }

    /// Runs every future concurrently on the **calling** task and resolves
    /// to their outputs in input order. All still-pending children are
    /// re-polled on each wake (they share one waker), which is the right
    /// trade for the fan-outs in this workspace (tens to a few hundred
    /// cheap-to-poll I/O futures); spawn tasks instead when children are
    /// poll-expensive.
    pub fn join_all<I>(futures: I) -> JoinAll<I::Item>
    where
        I: IntoIterator,
        I::Item: Future,
    {
        let futures: Vec<Option<Pin<Box<I::Item>>>> =
            futures.into_iter().map(|f| Some(Box::pin(f))).collect();
        let pending = futures.len();
        JoinAll {
            results: (0..pending).map(|_| None).collect(),
            futures,
            pending,
        }
    }
}

pub mod io {
    //! Async read/write traits and an in-memory duplex pipe.

    use std::collections::VecDeque;
    use std::io;
    use std::sync::{Arc, Mutex};
    use std::task::{Poll, Waker};

    use bytes::BytesMut;

    const READ_CHUNK: usize = 4096;

    /// The `read_buf` subset of tokio's `AsyncReadExt`.
    #[allow(async_fn_in_trait)]
    pub trait AsyncReadExt {
        /// Reads some bytes, appending them to `buf`; returns how many
        /// (0 means end of stream).
        async fn read_buf(&mut self, buf: &mut BytesMut) -> io::Result<usize>;
    }

    /// The `write_all`/`flush` subset of tokio's `AsyncWriteExt`.
    #[allow(async_fn_in_trait)]
    pub trait AsyncWriteExt {
        /// Writes all of `data`.
        async fn write_all(&mut self, data: &[u8]) -> io::Result<()>;
        /// Flushes buffered writes.
        async fn flush(&mut self) -> io::Result<()>;
    }

    impl AsyncReadExt for crate::net::TcpStream {
        async fn read_buf(&mut self, buf: &mut BytesMut) -> io::Result<usize> {
            let mut chunk = [0u8; READ_CHUNK];
            let n = self.read_some(&mut chunk).await?;
            buf.extend_from_slice(&chunk[..n]);
            Ok(n)
        }
    }

    impl AsyncWriteExt for crate::net::TcpStream {
        async fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
            self.write_all_bytes(data).await
        }

        async fn flush(&mut self) -> io::Result<()> {
            self.flush_bytes().await
        }
    }

    /// One direction of the in-memory pipe: bytes plus the reader's waker.
    #[derive(Default)]
    struct Pipe {
        state: Mutex<PipeState>,
    }

    #[derive(Default)]
    struct PipeState {
        buf: VecDeque<u8>,
        closed: bool,
        reader: Option<Waker>,
    }

    impl Pipe {
        fn write(&self, data: &[u8]) {
            let waker = {
                let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                state.buf.extend(data.iter().copied());
                state.reader.take()
            };
            if let Some(waker) = waker {
                waker.wake();
            }
        }

        fn close(&self) {
            let waker = {
                let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                state.closed = true;
                state.reader.take()
            };
            if let Some(waker) = waker {
                waker.wake();
            }
        }

        async fn read(&self, out: &mut BytesMut) -> usize {
            std::future::poll_fn(|cx| {
                let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                if !state.buf.is_empty() {
                    let n = state.buf.len().min(READ_CHUNK);
                    for byte in state.buf.drain(..n) {
                        out.extend_from_slice(&[byte]);
                    }
                    return Poll::Ready(n);
                }
                if state.closed {
                    return Poll::Ready(0);
                }
                state.reader = Some(cx.waker().clone());
                Poll::Pending
            })
            .await
        }
    }

    /// One end of an in-memory, bidirectional stream created by [`duplex`].
    pub struct DuplexStream {
        read: Arc<Pipe>,
        write: Arc<Pipe>,
    }

    impl Drop for DuplexStream {
        fn drop(&mut self) {
            // Dropping an end closes both directions, like the real type:
            // the peer observes EOF after draining buffered bytes.
            self.write.close();
            self.read.close();
        }
    }

    /// Creates an in-memory bidirectional channel. `_max_buf_size` is
    /// accepted for API compatibility; the vendored pipe is unbounded, which
    /// only makes writers complete sooner.
    pub fn duplex(_max_buf_size: usize) -> (DuplexStream, DuplexStream) {
        let ab = Arc::new(Pipe::default());
        let ba = Arc::new(Pipe::default());
        (
            DuplexStream {
                read: Arc::clone(&ba),
                write: Arc::clone(&ab),
            },
            DuplexStream {
                read: ab,
                write: ba,
            },
        )
    }

    impl AsyncReadExt for DuplexStream {
        async fn read_buf(&mut self, buf: &mut BytesMut) -> io::Result<usize> {
            Ok(self.read.read(buf).await)
        }
    }

    impl AsyncWriteExt for DuplexStream {
        async fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
            self.write.write(data);
            Ok(())
        }

        async fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
}

pub mod sync {
    //! Synchronization primitives.

    use std::ops::{Deref, DerefMut};

    /// Async façade over `std::sync::Mutex`. `lock` briefly blocks the
    /// worker thread instead of yielding; the critical sections in this
    /// workspace are short and never await while holding the guard, so a
    /// queue-fair async mutex would buy nothing.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Wraps `value`.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Acquires the lock.
        pub async fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: self
                    .inner
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            }
        }
    }

    /// Guard returned by [`Mutex::lock`].
    pub struct MutexGuard<'a, T> {
        inner: std::sync::MutexGuard<'a, T>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
}

pub mod time {
    //! Timer futures backed by the reactor's timer wheel.

    use std::fmt;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::Arc;
    use std::task::{Context, Poll};
    use std::time::{Duration, Instant};

    use crate::reactor;
    use crate::timer::TimerShared;

    /// Future returned by [`sleep`]: resolves once its deadline passes.
    pub struct Sleep {
        deadline: Instant,
        entry: Option<Arc<TimerShared>>,
    }

    impl Sleep {
        /// The instant this sleep resolves at.
        pub fn deadline(&self) -> Instant {
            self.deadline
        }
    }

    impl Future for Sleep {
        type Output = ();

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if Instant::now() >= self.deadline {
                if let Some(entry) = self.entry.take() {
                    entry.cancel();
                }
                return Poll::Ready(());
            }
            match &self.entry {
                Some(entry) => entry.set_waker(cx.waker()),
                None => {
                    self.entry = Some(reactor::handle().add_timer(self.deadline, cx.waker()));
                }
            }
            // The wheel fires already-due inserts on its next turn, so a
            // deadline that passed while arming still wakes us; re-checking
            // here just resolves that race without a spurious round trip.
            if Instant::now() >= self.deadline {
                return Poll::Ready(());
            }
            Poll::Pending
        }
    }

    impl Drop for Sleep {
        fn drop(&mut self) {
            if let Some(entry) = &self.entry {
                entry.cancel();
            }
        }
    }

    /// Suspends the current task for `duration` — a timer-wheel event, never
    /// a blocked thread.
    pub fn sleep(duration: Duration) -> Sleep {
        Sleep {
            deadline: Instant::now() + duration,
            entry: None,
        }
    }

    /// Error returned by [`timeout`] when the deadline passes first.
    #[derive(Debug)]
    pub struct Elapsed;

    impl fmt::Display for Elapsed {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "deadline has elapsed")
        }
    }

    impl std::error::Error for Elapsed {}

    /// Future returned by [`timeout`].
    pub struct Timeout<F> {
        future: F,
        sleep: Sleep,
    }

    impl<F: Future> Future for Timeout<F> {
        type Output = Result<F::Output, Elapsed>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            // SAFETY: `future` is never moved out of `this`; the projection
            // is the standard manual pin-projection pattern (`sleep` is
            // `Unpin`-shaped and polled through a fresh Pin each time).
            let this = unsafe { self.get_unchecked_mut() };
            let future = unsafe { Pin::new_unchecked(&mut this.future) };
            if let Poll::Ready(value) = future.poll(cx) {
                return Poll::Ready(Ok(value));
            }
            match Pin::new(&mut this.sleep).poll(cx) {
                Poll::Ready(()) => Poll::Ready(Err(Elapsed)),
                Poll::Pending => Poll::Pending,
            }
        }
    }

    /// Bounds `future` by `duration`. Unlike the historical stand-in, the
    /// deadline is a real timer-wheel event: a future suspended on socket
    /// readiness is preempted when the timer fires, so a hung peer costs
    /// exactly the timeout, never a wedged thread.
    pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
        Timeout {
            future,
            sleep: sleep(duration),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::{Duration, Instant};

    use bytes::BytesMut;

    use crate::io::{duplex, AsyncReadExt, AsyncWriteExt};
    use crate::runtime::block_on;

    #[test]
    fn block_on_returns_value() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn spawn_and_join() {
        let handle = crate::spawn(async { 7u32 });
        assert_eq!(block_on(handle).unwrap(), 7);
    }

    #[test]
    fn spawned_panic_surfaces_as_join_error() {
        let handle = crate::spawn(async { panic!("boom") });
        let err = block_on(handle).unwrap_err();
        assert!(err.is_panic());
        assert!(!err.is_cancelled());
    }

    #[test]
    fn duplex_round_trip_and_eof() {
        block_on(async {
            let (mut a, mut b) = duplex(64);
            a.write_all(b"ping").await.unwrap();
            a.flush().await.unwrap();
            drop(a);
            let mut buf = BytesMut::new();
            let n = b.read_buf(&mut buf).await.unwrap();
            assert_eq!(n, 4);
            assert_eq!(&buf[..], b"ping");
            assert_eq!(b.read_buf(&mut buf).await.unwrap(), 0);
        });
    }

    #[test]
    fn tcp_echo_over_loopback() {
        block_on(async {
            let listener = crate::net::TcpListener::bind("127.0.0.1:0".parse().unwrap())
                .await
                .unwrap();
            let addr = listener.local_addr().unwrap();
            let server = crate::spawn(async move {
                let (mut stream, _) = listener.accept().await.unwrap();
                let mut buf = BytesMut::new();
                while stream.read_buf(&mut buf).await.unwrap() > 0 {
                    if buf.len() >= 5 {
                        break;
                    }
                }
                stream.write_all(&buf).await.unwrap();
            });
            let mut client = crate::net::TcpStream::connect(addr).await.unwrap();
            client.write_all(b"hello").await.unwrap();
            let mut buf = BytesMut::new();
            while buf.len() < 5 {
                assert!(client.read_buf(&mut buf).await.unwrap() > 0);
            }
            assert_eq!(&buf[..], b"hello");
            server.await.unwrap();
        });
    }

    #[test]
    fn timeout_elapses_on_pending_future() {
        let forever = std::future::pending::<()>();
        let result = block_on(crate::time::timeout(Duration::from_millis(20), forever));
        assert!(result.is_err());
    }

    #[test]
    fn timeout_passes_through_ready_future() {
        let result = block_on(crate::time::timeout(Duration::from_secs(5), async { 3 }));
        assert_eq!(result.unwrap(), 3);
    }

    #[test]
    fn sleep_takes_roughly_its_duration() {
        let started = Instant::now();
        block_on(crate::time::sleep(Duration::from_millis(40)));
        let elapsed = started.elapsed();
        assert!(
            elapsed >= Duration::from_millis(40),
            "woke early: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(2),
            "woke far too late: {elapsed:?}"
        );
    }

    #[test]
    fn timeout_preempts_a_read_blocked_on_a_hung_peer() {
        // The tentpole property the historical stand-in lacked: a peer that
        // accepts and then never writes must not hold the caller past its
        // deadline — the timer wheel preempts the suspended read.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let (peer, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(5));
            drop(peer);
        });
        let started = Instant::now();
        let result = block_on(async {
            let mut stream = crate::net::TcpStream::connect(addr).await.unwrap();
            let mut buf = BytesMut::new();
            crate::time::timeout(Duration::from_millis(80), stream.read_buf(&mut buf)).await
        });
        let elapsed = started.elapsed();
        assert!(result.is_err(), "hung peer must elapse the timeout");
        assert!(
            elapsed < Duration::from_secs(2),
            "timeout must preempt the blocked read (elapsed {elapsed:?})"
        );
        drop(hold);
    }

    #[test]
    fn abort_cancels_a_task_suspended_in_io() {
        // `abort` must genuinely cancel: the task suspends reading from a
        // silent peer, the abort drops its future (closing the socket), and
        // the join handle reports cancellation.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let (peer, _) = listener.accept().unwrap();
            // Hold the peer open until the client end disappears.
            let mut byte = [0u8; 1];
            use std::io::Read;
            let _ = (&peer).read(&mut byte);
        });
        let cancelled = block_on(async {
            let handle = crate::spawn(async move {
                let mut stream = crate::net::TcpStream::connect(addr).await.unwrap();
                let mut buf = BytesMut::new();
                // Suspends forever: the peer never writes.
                stream.read_buf(&mut buf).await.unwrap();
            });
            crate::time::sleep(Duration::from_millis(50)).await;
            handle.abort();
            handle.await
        });
        let err = cancelled.unwrap_err();
        assert!(err.is_cancelled(), "abort must cancel, not detach: {err}");
        // The dropped future closed its socket, so the peer's read returns.
        hold.join().unwrap();
    }

    #[test]
    fn abort_racing_the_dispatch_window_is_never_lost() {
        // Abort immediately after spawn, racing the worker that dequeues
        // the fresh task: if the abort flag lands between the dequeue and
        // the task's RUNNING transition, the executor must still observe it
        // on the way back to idle — otherwise a task suspended with no
        // future wake (here: a forever-pending future) would leak and the
        // join handle would hang. 200 iterations hammer the window.
        block_on(async {
            for _ in 0..200 {
                let handle = crate::spawn(std::future::pending::<()>());
                handle.abort();
                let joined = crate::time::timeout(Duration::from_secs(5), handle).await;
                let err = joined
                    .expect("aborted task must complete its join handle")
                    .unwrap_err();
                assert!(err.is_cancelled());
            }
        });
    }

    #[test]
    fn join_all_resolves_in_input_order() {
        let outputs = block_on(crate::future::join_all((0..8u64).map(|i| async move {
            // Reverse-staggered sleeps: completion order is the opposite of
            // input order, results must still come back by index.
            crate::time::sleep(Duration::from_millis(24 - 3 * i)).await;
            i
        })));
        assert_eq!(outputs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn many_tasks_on_bounded_workers() {
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let handles: Vec<_> = (0..64)
            .map(|_| {
                let counter = std::sync::Arc::clone(&counter);
                crate::spawn(async move {
                    crate::time::sleep(Duration::from_millis(10)).await;
                    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                })
            })
            .collect();
        block_on(async {
            for handle in handles {
                handle.await.unwrap();
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 64);
    }

    #[test]
    fn async_mutex_guards_data() {
        block_on(async {
            let lock = crate::sync::Mutex::new(1u32);
            {
                let mut guard = lock.lock().await;
                *guard += 1;
            }
            assert_eq!(*lock.lock().await, 2);
        });
    }
}
