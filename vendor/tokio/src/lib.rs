//! Hermetic stand-in for the parts of `tokio` this workspace uses.
//!
//! The real tokio is a crates.io dependency; this workspace builds without
//! network access, so the subset `identxx-net` and its tests need is
//! implemented here with the simplest semantics that are still honest:
//!
//! * [`runtime::block_on`] — a poll loop with a parking waker,
//! * [`spawn`] — one OS thread per task (futures here block in I/O, so a
//!   cooperative scheduler would deadlock; threads match the semantics),
//! * [`net`] — `TcpListener` / `TcpStream` over blocking std sockets,
//! * [`io`] — `AsyncReadExt` / `AsyncWriteExt` and an in-memory [`io::duplex`],
//! * [`sync::Mutex`] — an async-`lock` façade over `std::sync::Mutex`,
//! * [`time::timeout`] — deadline checked between polls (it cannot preempt a
//!   blocking read; callers in this workspace never need that),
//! * `#[tokio::main]` / `#[tokio::test]` re-exported from the vendored
//!   `tokio-macros`.
//!
//! See DESIGN.md §2 for the substitution policy and its limits.

pub use tokio_macros::{main, test};

pub mod runtime {
    use std::future::Future;
    use std::pin::pin;
    use std::sync::Arc;
    use std::task::{Context, Poll, Wake, Waker};
    use std::thread::{self, Thread};
    use std::time::Duration;

    struct ThreadWaker(Thread);

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }

    /// Drives a future to completion on the calling thread.
    ///
    /// Parks between polls with a short timeout as a backstop: the I/O types
    /// in this vendored runtime complete synchronously inside `poll`, so
    /// `Pending` only arises from [`crate::time::timeout`] racing a deadline.
    pub fn block_on<F: Future>(future: F) -> F::Output {
        let mut future = pin!(future);
        let waker = Waker::from(Arc::new(ThreadWaker(thread::current())));
        let mut cx = Context::from_waker(&waker);
        loop {
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(value) => return value,
                Poll::Pending => thread::park_timeout(Duration::from_millis(1)),
            }
        }
    }
}

pub mod task {
    use std::fmt;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::mpsc;
    use std::task::{Context, Poll};

    /// Error returned when a spawned task panicked before producing a value.
    #[derive(Debug)]
    pub struct JoinError;

    impl fmt::Display for JoinError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "spawned task panicked")
        }
    }

    impl std::error::Error for JoinError {}

    /// Handle to a task spawned with [`crate::spawn`].
    pub struct JoinHandle<T> {
        pub(crate) rx: mpsc::Receiver<T>,
    }

    impl<T> JoinHandle<T> {
        /// Requests cancellation. The vendored runtime runs each task on its
        /// own OS thread and cannot interrupt one blocked in I/O; the thread
        /// is detached and exits with the process. Tasks in this workspace
        /// that get aborted (accept loops) hold no resources that outlive it.
        pub fn abort(&self) {}
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;

        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            // Blocking recv: awaiting a join handle is a terminal wait and
            // the producing task runs on its own thread.
            Poll::Ready(self.rx.recv().map_err(|_| JoinError))
        }
    }
}

/// Spawns a future onto its own OS thread, driven by [`runtime::block_on`].
pub fn spawn<F>(future: F) -> task::JoinHandle<F::Output>
where
    F: std::future::Future + Send + 'static,
    F::Output: Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let value = runtime::block_on(future);
        let _ = tx.send(value);
    });
    task::JoinHandle { rx }
}

pub mod net {
    use std::io;
    use std::net::SocketAddr;

    /// Async façade over a blocking `std::net::TcpListener`.
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        /// Binds to `addr`.
        pub async fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
            Ok(TcpListener {
                inner: std::net::TcpListener::bind(addr)?,
            })
        }

        /// Accepts one connection (blocking inside `poll`).
        pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let (stream, peer) = self.inner.accept()?;
            Ok((TcpStream { inner: stream }, peer))
        }

        /// The bound local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }

    /// Async façade over a blocking `std::net::TcpStream`.
    pub struct TcpStream {
        inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Connects to `addr`.
        pub async fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
            Ok(TcpStream {
                inner: std::net::TcpStream::connect(addr)?,
            })
        }

        pub(crate) fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            use std::io::Read;
            self.inner.read(buf)
        }

        pub(crate) fn write_all_bytes(&mut self, data: &[u8]) -> io::Result<()> {
            use std::io::Write;
            self.inner.write_all(data)
        }

        pub(crate) fn flush_bytes(&mut self) -> io::Result<()> {
            use std::io::Write;
            self.inner.flush()
        }
    }
}

pub mod io {
    use std::collections::VecDeque;
    use std::io;
    use std::sync::{Arc, Condvar, Mutex};

    use bytes::BytesMut;

    const READ_CHUNK: usize = 4096;

    /// The `read_buf` subset of tokio's `AsyncReadExt`.
    #[allow(async_fn_in_trait)]
    pub trait AsyncReadExt {
        /// Reads some bytes, appending them to `buf`; returns how many
        /// (0 means end of stream).
        async fn read_buf(&mut self, buf: &mut BytesMut) -> io::Result<usize>;
    }

    /// The `write_all`/`flush` subset of tokio's `AsyncWriteExt`.
    #[allow(async_fn_in_trait)]
    pub trait AsyncWriteExt {
        /// Writes all of `data`.
        async fn write_all(&mut self, data: &[u8]) -> io::Result<()>;
        /// Flushes buffered writes.
        async fn flush(&mut self) -> io::Result<()>;
    }

    impl AsyncReadExt for crate::net::TcpStream {
        async fn read_buf(&mut self, buf: &mut BytesMut) -> io::Result<usize> {
            let mut chunk = [0u8; READ_CHUNK];
            let n = self.read_some(&mut chunk)?;
            buf.extend_from_slice(&chunk[..n]);
            Ok(n)
        }
    }

    impl AsyncWriteExt for crate::net::TcpStream {
        async fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
            self.write_all_bytes(data)
        }

        async fn flush(&mut self) -> io::Result<()> {
            self.flush_bytes()
        }
    }

    /// One direction of an in-memory pipe.
    #[derive(Default)]
    struct Pipe {
        state: Mutex<PipeState>,
        readable: Condvar,
    }

    #[derive(Default)]
    struct PipeState {
        buf: VecDeque<u8>,
        closed: bool,
    }

    impl Pipe {
        fn write(&self, data: &[u8]) {
            let mut state = self.state.lock().unwrap();
            state.buf.extend(data.iter().copied());
            self.readable.notify_all();
        }

        fn close(&self) {
            let mut state = self.state.lock().unwrap();
            state.closed = true;
            self.readable.notify_all();
        }

        fn read(&self, out: &mut BytesMut) -> usize {
            let mut state = self.state.lock().unwrap();
            loop {
                if !state.buf.is_empty() {
                    let n = state.buf.len().min(READ_CHUNK);
                    for byte in state.buf.drain(..n) {
                        out.extend_from_slice(&[byte]);
                    }
                    return n;
                }
                if state.closed {
                    return 0;
                }
                state = self.readable.wait(state).unwrap();
            }
        }
    }

    /// One end of an in-memory, bidirectional stream created by [`duplex`].
    pub struct DuplexStream {
        read: Arc<Pipe>,
        write: Arc<Pipe>,
    }

    impl Drop for DuplexStream {
        fn drop(&mut self) {
            // Dropping an end closes both directions, like the real type:
            // the peer observes EOF after draining buffered bytes.
            self.write.close();
            self.read.close();
        }
    }

    /// Creates an in-memory bidirectional channel. `_max_buf_size` is
    /// accepted for API compatibility; the vendored pipe is unbounded, which
    /// only makes writers complete sooner.
    pub fn duplex(_max_buf_size: usize) -> (DuplexStream, DuplexStream) {
        let ab = Arc::new(Pipe::default());
        let ba = Arc::new(Pipe::default());
        (
            DuplexStream {
                read: Arc::clone(&ba),
                write: Arc::clone(&ab),
            },
            DuplexStream {
                read: ab,
                write: ba,
            },
        )
    }

    impl AsyncReadExt for DuplexStream {
        async fn read_buf(&mut self, buf: &mut BytesMut) -> io::Result<usize> {
            Ok(self.read.read(buf))
        }
    }

    impl AsyncWriteExt for DuplexStream {
        async fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
            self.write.write(data);
            Ok(())
        }

        async fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
}

pub mod sync {
    use std::ops::{Deref, DerefMut};

    /// Async façade over `std::sync::Mutex`. `lock` blocks the thread
    /// instead of yielding; the critical sections in this workspace are
    /// short and never await while holding the guard.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Wraps `value`.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Acquires the lock.
        pub async fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: self
                    .inner
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            }
        }
    }

    /// Guard returned by [`Mutex::lock`].
    pub struct MutexGuard<'a, T> {
        inner: std::sync::MutexGuard<'a, T>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
}

pub mod time {
    use std::fmt;
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};
    use std::time::{Duration, Instant};

    /// Error returned by [`timeout`] when the deadline passes first.
    #[derive(Debug)]
    pub struct Elapsed;

    impl fmt::Display for Elapsed {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "deadline has elapsed")
        }
    }

    impl std::error::Error for Elapsed {}

    /// Future returned by [`timeout`].
    pub struct Timeout<F> {
        future: F,
        deadline: Instant,
    }

    impl<F: Future> Future for Timeout<F> {
        type Output = Result<F::Output, Elapsed>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            // Safety: `future` is never moved out of `this`; the projection
            // is the standard manual pin-projection pattern.
            let this = unsafe { self.get_unchecked_mut() };
            let future = unsafe { Pin::new_unchecked(&mut this.future) };
            match future.poll(cx) {
                Poll::Ready(value) => Poll::Ready(Ok(value)),
                Poll::Pending if Instant::now() >= this.deadline => Poll::Ready(Err(Elapsed)),
                Poll::Pending => {
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
    }

    /// Bounds `future` by `duration`. The deadline is only checked between
    /// polls: the vendored I/O blocks inside `poll`, so a timeout cannot
    /// preempt a stuck read — callers in this workspace rely on peers either
    /// answering or closing the connection.
    pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
        Timeout {
            future,
            deadline: Instant::now() + duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use bytes::BytesMut;

    use crate::io::{duplex, AsyncReadExt, AsyncWriteExt};
    use crate::runtime::block_on;

    #[test]
    fn block_on_returns_value() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn spawn_and_join() {
        let handle = crate::spawn(async { 7u32 });
        assert_eq!(block_on(handle).unwrap(), 7);
    }

    #[test]
    fn duplex_round_trip_and_eof() {
        block_on(async {
            let (mut a, mut b) = duplex(64);
            a.write_all(b"ping").await.unwrap();
            a.flush().await.unwrap();
            drop(a);
            let mut buf = BytesMut::new();
            let n = b.read_buf(&mut buf).await.unwrap();
            assert_eq!(n, 4);
            assert_eq!(&buf[..], b"ping");
            assert_eq!(b.read_buf(&mut buf).await.unwrap(), 0);
        });
    }

    #[test]
    fn tcp_echo_over_loopback() {
        block_on(async {
            let listener = crate::net::TcpListener::bind("127.0.0.1:0".parse().unwrap())
                .await
                .unwrap();
            let addr = listener.local_addr().unwrap();
            let server = crate::spawn(async move {
                let (mut stream, _) = listener.accept().await.unwrap();
                let mut buf = BytesMut::new();
                while stream.read_buf(&mut buf).await.unwrap() > 0 {
                    if buf.len() >= 5 {
                        break;
                    }
                }
                stream.write_all(&buf).await.unwrap();
            });
            let mut client = crate::net::TcpStream::connect(addr).await.unwrap();
            client.write_all(b"hello").await.unwrap();
            let mut buf = BytesMut::new();
            while buf.len() < 5 {
                assert!(client.read_buf(&mut buf).await.unwrap() > 0);
            }
            assert_eq!(&buf[..], b"hello");
            server.await.unwrap();
        });
    }

    #[test]
    fn timeout_elapses_on_pending_future() {
        use std::time::Duration;
        let forever = std::future::pending::<()>();
        let result = block_on(crate::time::timeout(Duration::from_millis(20), forever));
        assert!(result.is_err());
    }

    #[test]
    fn timeout_passes_through_ready_future() {
        use std::time::Duration;
        let result = block_on(crate::time::timeout(Duration::from_secs(5), async { 3 }));
        assert_eq!(result.unwrap(), 3);
    }

    #[test]
    fn async_mutex_guards_data() {
        block_on(async {
            let lock = crate::sync::Mutex::new(1u32);
            {
                let mut guard = lock.lock().await;
                *guard += 1;
            }
            assert_eq!(*lock.lock().await, 2);
        });
    }
}
