//! Non-blocking TCP types driven by the reactor.
//!
//! Every socket is switched into non-blocking mode and registered with the
//! epoll reactor at creation. I/O methods run the edge-triggered discipline:
//! try the syscall, and on `WouldBlock` suspend on the socket's readiness
//! until the reactor reports the next transition — so a task blocked on a
//! dead peer costs a parked waker, not a parked OS thread, and
//! [`crate::time::timeout`] can preempt it at its deadline.

use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::os::fd::AsRawFd;

use crate::reactor::{self, Registration, ScheduledIo, READABLE, WRITABLE};
use crate::sys;

/// Runs one non-blocking syscall to completion: retries after `Interrupted`,
/// suspends on `WouldBlock` until the reactor reports readiness.
pub(crate) async fn io_op<T>(
    io: &ScheduledIo,
    mask: u8,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    loop {
        match op() {
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => io.ready(mask).await,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            result => return result,
        }
    }
}

/// A reactor-registered TCP listener.
pub struct TcpListener {
    // Declared before the socket: deregistration must precede the fd close.
    reg: Registration,
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Binds to `addr` in non-blocking mode and registers with the reactor.
    pub async fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
        // xtask:allow-blocking — bind(2) on a local address does not wait
        // on the network; real tokio performs it synchronously too.
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        let reg = reactor::handle().register(inner.as_raw_fd())?;
        Ok(TcpListener { reg, inner })
    }

    /// Accepts one connection, suspending (not blocking a thread) until a
    /// peer arrives.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        let (stream, peer) = io_op(&self.reg.io, READABLE, || self.inner.accept()).await?;
        stream.set_nonblocking(true)?;
        let reg = reactor::handle().register(stream.as_raw_fd())?;
        Ok((TcpStream { reg, inner: stream }, peer))
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

/// A reactor-registered TCP stream.
pub struct TcpStream {
    // Declared before the socket: deregistration must precede the fd close.
    reg: Registration,
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Connects to `addr` without ever blocking a thread: the socket is
    /// created non-blocking, the in-progress connect suspends on
    /// writability, and the socket error is checked on completion — so a
    /// black-holed peer holds a waker, not a thread, and a wrapping
    /// [`crate::time::timeout`] genuinely cancels the attempt.
    pub async fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
        let (inner, in_progress) = sys::connect_nonblocking(&addr)?;
        let reg = reactor::handle().register(inner.as_raw_fd())?;
        let stream = TcpStream { reg, inner };
        if in_progress {
            stream.reg.io.ready(WRITABLE).await;
            sys::take_socket_error(stream.inner.as_raw_fd())?;
        }
        Ok(stream)
    }

    pub(crate) async fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let inner = &self.inner;
        io_op(&self.reg.io, READABLE, || (&*inner).read(buf)).await
    }

    pub(crate) async fn write_all_bytes(&mut self, mut data: &[u8]) -> io::Result<()> {
        while !data.is_empty() {
            let inner = &self.inner;
            let n = io_op(&self.reg.io, WRITABLE, || (&*inner).write(data)).await?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "wrote zero bytes to TCP stream",
                ));
            }
            data = &data[n..];
        }
        Ok(())
    }

    pub(crate) async fn flush_bytes(&mut self) -> io::Result<()> {
        // Kernel sockets have no userspace write buffer to flush.
        Ok(())
    }
}
