//! The epoll reactor: one background thread multiplexing readiness for every
//! socket the runtime owns, plus the timer wheel.
//!
//! Sockets register once (edge-triggered, both directions) and receive an
//! [`ScheduledIo`] holding cached readiness bits and one waker slot per
//! direction. I/O futures follow the standard edge-triggered discipline:
//! attempt the syscall; on `WouldBlock`, park a waker and consume a readiness
//! bit if one arrived in the meantime. The reactor thread's only jobs are to
//! translate epoll events into readiness bits + wakes and to advance the
//! timer wheel; it never performs I/O on behalf of tasks, so a slow
//! connection can't stall the loop.
//!
//! The reactor starts lazily on first use and lives for the process — a
//! stand-in for tokio's driver, which this workspace never shuts down
//! mid-process either.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::task::{Context, Poll, Waker};
use std::time::Instant;

use crate::sys;
use crate::timer::{TimerShared, TimerWheel};

/// Readiness bit: the socket may be readable (or closed/errored).
pub(crate) const READABLE: u8 = 0b01;
/// Readiness bit: the socket may be writable (or closed/errored).
pub(crate) const WRITABLE: u8 = 0b10;

/// Token reserved for the reactor's self-wake pipe.
const WAKE_TOKEN: u64 = 0;

/// Per-socket reactor state: cached readiness and per-direction wakers.
pub(crate) struct ScheduledIo {
    readiness: AtomicU8,
    reader: Mutex<Option<Waker>>,
    writer: Mutex<Option<Waker>>,
}

impl ScheduledIo {
    fn new() -> ScheduledIo {
        ScheduledIo {
            readiness: AtomicU8::new(0),
            reader: Mutex::new(None),
            writer: Mutex::new(None),
        }
    }

    /// Reactor-side: record readiness and wake whoever waits on it.
    fn dispatch(&self, events: u32) {
        let mut bits = 0u8;
        if events & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0 {
            bits |= READABLE;
        }
        if events & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0 {
            bits |= WRITABLE;
        }
        if bits == 0 {
            return;
        }
        self.readiness.fetch_or(bits, Ordering::AcqRel);
        if bits & READABLE != 0 {
            wake_slot(&self.reader);
        }
        if bits & WRITABLE != 0 {
            wake_slot(&self.writer);
        }
    }

    fn waker_slot(&self, mask: u8) -> &Mutex<Option<Waker>> {
        if mask == READABLE {
            &self.reader
        } else {
            &self.writer
        }
    }

    /// Consumes a readiness bit if present.
    fn take_readiness(&self, mask: u8) -> bool {
        self.readiness.fetch_and(!mask, Ordering::AcqRel) & mask != 0
    }

    /// Waits until the direction in `mask` reports ready, consuming the
    /// readiness bit. Always `await` this only after a syscall returned
    /// `WouldBlock` — edge-triggered epoll reports *transitions*, so waiting
    /// without having drained the socket can sleep forever.
    pub(crate) fn ready(&self, mask: u8) -> Ready<'_> {
        Ready { io: self, mask }
    }
}

fn wake_slot(slot: &Mutex<Option<Waker>>) {
    let waker = slot.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(waker) = waker {
        waker.wake();
    }
}

/// Future returned by [`ScheduledIo::ready`].
pub(crate) struct Ready<'a> {
    io: &'a ScheduledIo,
    mask: u8,
}

impl std::future::Future for Ready<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.io.take_readiness(self.mask) {
            return Poll::Ready(());
        }
        {
            let mut slot = self
                .io
                .waker_slot(self.mask)
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            match slot.as_ref() {
                Some(current) if current.will_wake(cx.waker()) => {}
                _ => *slot = Some(cx.waker().clone()),
            }
        }
        // Re-check after parking the waker: an event between the first check
        // and the store would otherwise be missed (its wake hit the previous
        // waker or none at all).
        if self.io.take_readiness(self.mask) {
            return Poll::Ready(());
        }
        Poll::Pending
    }
}

/// A socket's registration with the reactor; dropping it deregisters the fd.
/// Declare it **before** the socket in structs, so deregistration precedes
/// the fd's close.
pub(crate) struct Registration {
    token: u64,
    fd: RawFd,
    pub(crate) io: Arc<ScheduledIo>,
}

impl Drop for Registration {
    fn drop(&mut self) {
        handle().deregister(self.token, self.fd);
    }
}

pub(crate) struct Reactor {
    epfd: RawFd,
    registrations: Mutex<HashMap<u64, Arc<ScheduledIo>>>,
    next_token: AtomicU64,
    timers: Mutex<TimerWheel>,
    /// Write end of the self-wake pipe; one byte unblocks `epoll_wait` so the
    /// loop re-reads its timer deadline.
    wake_writer: std::os::unix::net::UnixStream,
}

static REACTOR: OnceLock<Reactor> = OnceLock::new();

/// The process-wide reactor, started on first use.
pub(crate) fn handle() -> &'static Reactor {
    REACTOR.get_or_init(Reactor::start)
}

impl Reactor {
    fn start() -> Reactor {
        let epfd = sys::epoll_create().expect("epoll_create1 failed");
        let (wake_reader, wake_writer) = std::os::unix::net::UnixStream::pair().expect("wake pipe");
        wake_reader
            .set_nonblocking(true)
            .expect("wake pipe nonblocking");
        wake_writer
            .set_nonblocking(true)
            .expect("wake pipe nonblocking");
        // Level-triggered on purpose: the drain loop below consumes all
        // pending bytes, and a missed edge here would strand the loop on a
        // stale timeout.
        sys::epoll_add(epfd, wake_reader.as_raw_fd(), WAKE_TOKEN, sys::EPOLLIN)
            .expect("register wake pipe");
        let reactor = Reactor {
            epfd,
            registrations: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            timers: Mutex::new(TimerWheel::new(Instant::now())),
            wake_writer,
        };
        std::thread::Builder::new()
            .name("idx-reactor".into())
            .spawn(move || handle().run(wake_reader))
            .expect("spawn reactor thread");
        reactor
    }

    fn run(&self, wake_reader: std::os::unix::net::UnixStream) {
        let mut events = [sys::epoll_event { events: 0, data: 0 }; 64];
        let mut drain = [0u8; 64];
        loop {
            let timeout_ms = {
                let timers = self.timers.lock().unwrap_or_else(|e| e.into_inner());
                match timers.poll_timeout_ms(Instant::now()) {
                    Some(ms) => ms.min(i32::MAX as u64) as i32,
                    None => -1,
                }
            };
            let n = match sys::wait(self.epfd, &mut events, timeout_ms) {
                Ok(n) => n,
                Err(_) => continue,
            };
            for event in &events[..n] {
                let token = event.data;
                if token == WAKE_TOKEN {
                    while let Ok(n) = (&wake_reader).read(&mut drain) {
                        if n < drain.len() {
                            break;
                        }
                    }
                    continue;
                }
                let io = {
                    let map = self.registrations.lock().unwrap_or_else(|e| e.into_inner());
                    map.get(&token).cloned()
                };
                if let Some(io) = io {
                    io.dispatch(event.events);
                }
            }
            self.timers
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .advance(Instant::now());
        }
    }

    /// Registers a non-blocking socket, edge-triggered for both directions.
    pub(crate) fn register(&self, fd: RawFd) -> io::Result<Registration> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let io = Arc::new(ScheduledIo::new());
        self.registrations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(token, Arc::clone(&io));
        let events = sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET;
        if let Err(err) = sys::epoll_add(self.epfd, fd, token, events) {
            self.registrations
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&token);
            return Err(err);
        }
        Ok(Registration { token, fd, io })
    }

    fn deregister(&self, token: u64, fd: RawFd) {
        // The fd may already be half-closed; failure here only means there is
        // nothing left to deregister.
        let _ = sys::epoll_del(self.epfd, fd);
        self.registrations
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&token);
    }

    /// Arms a timer waking `waker` at `deadline`; nudges the reactor loop if
    /// this deadline is now the earliest.
    pub(crate) fn add_timer(&self, deadline: Instant, waker: &Waker) -> Arc<TimerShared> {
        let (shared, now_earliest) = self
            .timers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(deadline, waker);
        if now_earliest {
            self.wake();
        }
        shared
    }

    fn wake(&self) {
        // A full pipe means a wake is already pending — exactly what we want.
        let _ = (&self.wake_writer).write(&[1]);
    }
}
