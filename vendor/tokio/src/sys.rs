//! Minimal FFI shim over the platform's `epoll` and socket syscalls.
//!
//! The vendored runtime needs exactly four kernel facilities that `std` does
//! not expose: an `epoll` instance to multiplex readiness, non-blocking
//! `connect` (std's `TcpStream::connect` blocks in the syscall), the
//! `SO_ERROR` read that completes a non-blocking connect, and nothing else —
//! fd lifecycle, reads, writes, and accepts all go through `std` types
//! switched into non-blocking mode. The declarations below bind directly to
//! the C library `std` already links, so no external crate is needed; the
//! constants are the Linux generic-architecture values (x86_64/aarch64).

#![allow(non_camel_case_types)]

use std::io;
use std::net::SocketAddr;
use std::os::fd::RawFd;

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
pub(crate) const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CLOEXEC: i32 = 0o2000000;

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;
const SOCK_STREAM: i32 = 1;
const SOCK_NONBLOCK: i32 = 0o4000;
const SOCK_CLOEXEC: i32 = 0o2000000;
const SOL_SOCKET: i32 = 1;
const SO_ERROR: i32 = 4;
const EINPROGRESS: i32 = 115;
const EINTR: i32 = 4;

/// Mirror of the kernel's `struct epoll_event`. Packed on x86, where the
/// kernel ABI leaves the 64-bit data field unaligned.
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct epoll_event {
    pub events: u32,
    pub data: u64,
}

#[repr(C)]
struct sockaddr_in {
    sin_family: u16,
    /// Network byte order.
    sin_port: u16,
    /// Network byte order.
    sin_addr: [u8; 4],
    sin_zero: [u8; 8],
}

#[repr(C)]
struct sockaddr_in6 {
    sin6_family: u16,
    /// Network byte order.
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut epoll_event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut epoll_event, maxevents: i32, timeout: i32) -> i32;
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn connect(fd: i32, addr: *const u8, len: u32) -> i32;
    fn getsockopt(fd: i32, level: i32, optname: i32, optval: *mut u8, optlen: *mut u32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates a close-on-exec epoll instance.
pub(crate) fn epoll_create() -> io::Result<RawFd> {
    // SAFETY: `epoll_create1` takes no pointers; the flag is a valid constant.
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Registers `fd` for `events`, tagging readiness reports with `token`.
pub(crate) fn epoll_add(epfd: RawFd, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
    let mut event = epoll_event {
        events,
        data: token,
    };
    // SAFETY: `event` is a live stack value for the duration of the call; a
    // stale `epfd`/`fd` is reported by the kernel as `EBADF`, not UB.
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut event) }).map(|_| ())
}

/// Removes `fd` from the epoll set. Failure is tolerable (the fd may already
/// be closed), so the caller usually ignores the result.
pub(crate) fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    let mut event = epoll_event { events: 0, data: 0 };
    // SAFETY: as for `epoll_add` — the event struct outlives the call and bad
    // fds surface as `EBADF`.
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut event) }).map(|_| ())
}

/// Waits up to `timeout_ms` (`-1` = forever) for readiness events. `EINTR`
/// is reported as zero events so the caller's loop just re-enters.
pub(crate) fn wait(epfd: RawFd, events: &mut [epoll_event], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: the pointer/length pair comes from a live `&mut [epoll_event]`,
    // and the kernel writes at most `events.len()` entries into it.
    let ret = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
    if ret < 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() == Some(EINTR) {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(ret as usize)
}

/// Starts a non-blocking TCP connect to `addr`. Returns the socket (already
/// in non-blocking mode) and whether the connect is still in progress — if
/// so, the caller waits for writability and then checks
/// [`take_socket_error`].
pub(crate) fn connect_nonblocking(addr: &SocketAddr) -> io::Result<(std::net::TcpStream, bool)> {
    use std::os::fd::FromRawFd;
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: `socket` takes no pointers; invalid arguments surface as errno.
    let fd = cvt(unsafe { socket(domain as i32, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    // From here the fd is owned by the std stream, which closes it on drop
    // (including on the error paths below).
    // SAFETY: `fd` was just created, is owned by nothing else, and ownership
    // transfers to `stream` here exactly once.
    let stream = unsafe { std::net::TcpStream::from_raw_fd(fd) };
    let ret = match addr {
        SocketAddr::V4(v4) => {
            let raw = sockaddr_in {
                sin_family: AF_INET,
                sin_port: v4.port().to_be(),
                sin_addr: v4.ip().octets(),
                sin_zero: [0; 8],
            };
            // SAFETY: `raw` is a fully initialized `sockaddr_in` that lives
            // across the call, and the advertised length matches its size.
            unsafe {
                connect(
                    fd,
                    (&raw as *const sockaddr_in).cast(),
                    std::mem::size_of::<sockaddr_in>() as u32,
                )
            }
        }
        SocketAddr::V6(v6) => {
            let raw = sockaddr_in6 {
                sin6_family: AF_INET6,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo().to_be(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            // SAFETY: `raw` is a fully initialized `sockaddr_in6` that lives
            // across the call, and the advertised length matches its size.
            unsafe {
                connect(
                    fd,
                    (&raw as *const sockaddr_in6).cast(),
                    std::mem::size_of::<sockaddr_in6>() as u32,
                )
            }
        }
    };
    if ret == 0 {
        return Ok((stream, false));
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(EINPROGRESS) {
        return Ok((stream, true));
    }
    Err(err)
}

/// Reads and clears the socket's pending error (`SO_ERROR`) — the completion
/// status of a non-blocking connect once the socket reports writable.
pub(crate) fn take_socket_error(fd: RawFd) -> io::Result<()> {
    let mut err: i32 = 0;
    let mut len = std::mem::size_of::<i32>() as u32;
    // SAFETY: `err` and `len` are live stack variables; `len` advertises
    // exactly the size of `err`, which is all the kernel writes.
    cvt(unsafe {
        getsockopt(
            fd,
            SOL_SOCKET,
            SO_ERROR,
            (&mut err as *mut i32).cast(),
            &mut len,
        )
    })?;
    if err == 0 {
        Ok(())
    } else {
        Err(io::Error::from_raw_os_error(err))
    }
}
