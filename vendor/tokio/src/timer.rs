//! The hashed timer wheel behind [`crate::time`].
//!
//! One wheel lives inside the reactor ([`crate::reactor`]); the reactor
//! thread advances it after every `epoll_wait` and uses
//! [`TimerWheel::next_deadline_ms`] to bound how long it sleeps, which is
//! what lets a `timeout` preempt a socket read that never becomes ready.
//!
//! Layout: 512 one-millisecond slots cover the wheel's current revolution;
//! deadlines further out sit in a `BTreeMap` overflow that drains into the
//! slots as the cursor advances. Because an entry is only filed into a slot
//! when its deadline falls inside the current 512 ms window, every entry in
//! a slot shares the one in-window deadline congruent to that slot — firing
//! a due slot is a plain drain, no per-entry deadline comparison.
//!
//! Cancellation is lazy: dropping a `Sleep` flips its shared state to
//! cancelled and the wheel discards the entry when its deadline comes due.
//! Entries therefore linger for at most their original duration, bounding
//! the garbage by (timer rate × timeout length) — a few MB at the query
//! plane's default 2 s budget and tens of thousands of exchanges per second.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::task::Waker;
use std::time::Instant;

const SLOTS: usize = 512;

const ARMED: u8 = 0;
const FIRED: u8 = 1;
const CANCELLED: u8 = 2;

/// State shared between a timer future (`Sleep`) and the wheel.
pub(crate) struct TimerShared {
    state: AtomicU8,
    waker: Mutex<Option<Waker>>,
}

impl TimerShared {
    fn new(waker: &Waker) -> TimerShared {
        TimerShared {
            state: AtomicU8::new(ARMED),
            waker: Mutex::new(Some(waker.clone())),
        }
    }

    /// Replaces the waker woken at the deadline (the future may migrate
    /// between tasks' contexts across polls).
    pub(crate) fn set_waker(&self, waker: &Waker) {
        let mut slot = self.waker.lock().unwrap_or_else(|e| e.into_inner());
        match slot.as_ref() {
            Some(current) if current.will_wake(waker) => {}
            _ => *slot = Some(waker.clone()),
        }
    }

    /// Marks the timer dead; the wheel drops the entry when its slot fires.
    pub(crate) fn cancel(&self) {
        let _ = self
            .state
            .compare_exchange(ARMED, CANCELLED, Ordering::AcqRel, Ordering::Acquire);
    }

    fn fire(&self) {
        if self
            .state
            .compare_exchange(ARMED, FIRED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let waker = self.waker.lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(waker) = waker {
                waker.wake();
            }
        }
    }
}

struct Entry {
    deadline_ms: u64,
    shared: Arc<TimerShared>,
}

pub(crate) struct TimerWheel {
    start: Instant,
    /// Every deadline strictly below this has fired.
    cursor_ms: u64,
    slots: Vec<Vec<Entry>>,
    overflow: BTreeMap<u64, Vec<Entry>>,
    /// Live (fired-or-not-yet-drained) entries; zero short-circuits the
    /// deadline scan.
    live: usize,
    /// Cached earliest pending deadline: recomputed by [`TimerWheel::advance`]
    /// each reactor loop, and lowered in place by inserts between loops —
    /// so an insert costs O(1), not a wheel scan.
    earliest: Option<u64>,
}

impl TimerWheel {
    pub(crate) fn new(start: Instant) -> TimerWheel {
        TimerWheel {
            start,
            cursor_ms: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            overflow: BTreeMap::new(),
            live: 0,
            earliest: None,
        }
    }

    fn to_ms(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.start).as_millis() as u64
    }

    /// Registers a waker to fire at `deadline` (rounded **up** to the next
    /// millisecond, so timers never fire early). Returns the shared handle
    /// and whether this deadline is now the wheel's earliest — the caller
    /// must wake the reactor in that case so it re-arms its poll timeout.
    pub(crate) fn insert(&mut self, deadline: Instant, waker: &Waker) -> (Arc<TimerShared>, bool) {
        let shared = Arc::new(TimerShared::new(waker));
        // Ceil: a deadline of 3.2 ms files under 4 ms.
        let deadline_ms = self.to_ms(deadline).saturating_add(1).max(self.cursor_ms);
        let entry = Entry {
            deadline_ms,
            shared: Arc::clone(&shared),
        };
        if deadline_ms < self.cursor_ms + SLOTS as u64 {
            self.slots[(deadline_ms % SLOTS as u64) as usize].push(entry);
        } else {
            self.overflow.entry(deadline_ms).or_default().push(entry);
        }
        self.live += 1;
        let now_earliest = self.earliest.is_none_or(|e| deadline_ms < e);
        if now_earliest {
            self.earliest = Some(deadline_ms);
        }
        (shared, now_earliest)
    }

    /// Fires everything due at `now` and pulls overflow entries whose
    /// deadline has entered the wheel's window.
    ///
    /// The cursor jumps from due deadline to due deadline instead of
    /// stepping per millisecond — after a long idle stretch (the reactor
    /// parked in `epoll_wait` with no timers) the catch-up costs one
    /// iteration per *pending* deadline, not one per elapsed millisecond,
    /// so the first event after hours of idleness does not stall the
    /// reactor under the timers lock.
    pub(crate) fn advance(&mut self, now: Instant) {
        let now_ms = self.to_ms(now);
        loop {
            // The slot scan sees every in-window entry, and any overflow
            // entry inside the window was pulled at the end of the previous
            // iteration — so `next` really is the earliest pending deadline.
            let due = match self.next_deadline_ms() {
                Some(next) if next <= now_ms => next,
                _ => {
                    // Nothing (more) due: everything strictly before now has
                    // fired, so the cursor may jump past the idle stretch.
                    // Pull overflow for the shifted window — every cursor
                    // move must, or an overflow entry could later be filed
                    // behind the cursor and fire a whole revolution late.
                    self.cursor_ms = self.cursor_ms.max(now_ms + 1);
                    self.pull_overflow();
                    break;
                }
            };
            self.cursor_ms = self.cursor_ms.max(due);
            // `due` may live in the overflow (slots empty across the jump);
            // bring the new window's entries into their slots before firing.
            self.pull_overflow();
            let slot = (self.cursor_ms % SLOTS as u64) as usize;
            for entry in self.slots[slot].drain(..) {
                self.live -= 1;
                entry.shared.fire();
            }
            self.cursor_ms += 1;
            self.pull_overflow();
        }
        self.earliest = self.next_deadline_ms();
    }

    /// Moves overflow entries whose deadline entered the wheel's current
    /// 512 ms window into their slots.
    fn pull_overflow(&mut self) {
        let window_end = self.cursor_ms + SLOTS as u64;
        while let Some(entry) = self.overflow.first_entry() {
            if *entry.key() >= window_end {
                break;
            }
            for entry in entry.remove() {
                self.slots[(entry.deadline_ms % SLOTS as u64) as usize].push(entry);
            }
        }
    }

    /// The earliest pending deadline in wheel milliseconds, if any. Linear in
    /// the wheel size (≤ 512 emptiness checks), run once per reactor loop.
    fn next_deadline_ms(&self) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        for deadline in self.cursor_ms..self.cursor_ms + SLOTS as u64 {
            if !self.slots[(deadline % SLOTS as u64) as usize].is_empty() {
                return Some(deadline);
            }
        }
        self.overflow.keys().next().copied()
    }

    /// Milliseconds the reactor may sleep before the next deadline
    /// (`None` = no timers, sleep until I/O).
    pub(crate) fn poll_timeout_ms(&self, now: Instant) -> Option<u64> {
        let next = self.earliest?;
        Some(next.saturating_sub(self.to_ms(now)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
    use std::task::Wake;
    use std::time::Duration;

    struct CountingWake(AtomicUsize);

    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, AtomicOrdering::SeqCst);
        }
    }

    fn counting_waker() -> (Arc<CountingWake>, Waker) {
        let counter = Arc::new(CountingWake(AtomicUsize::new(0)));
        (Arc::clone(&counter), Waker::from(counter))
    }

    #[test]
    fn fires_after_a_long_idle_jump() {
        // The cursor must catch up from hours of idleness per *deadline*,
        // not per millisecond — and still fire correctly afterwards.
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        wheel.advance(start + Duration::from_secs(36_000));
        let (fired, waker) = counting_waker();
        wheel.insert(
            start + Duration::from_secs(36_000) + Duration::from_millis(50),
            &waker,
        );
        wheel.advance(start + Duration::from_secs(36_000) + Duration::from_millis(10));
        assert_eq!(
            fired.0.load(AtomicOrdering::SeqCst),
            0,
            "must not fire early"
        );
        wheel.advance(start + Duration::from_secs(36_000) + Duration::from_millis(60));
        assert_eq!(
            fired.0.load(AtomicOrdering::SeqCst),
            1,
            "must fire after the jump"
        );
    }

    #[test]
    fn overflow_entry_survives_a_cursor_jump() {
        // An entry parked in the overflow (beyond the 512 ms window at
        // insert time) must still fire on time when the cursor jumps across
        // an idle stretch rather than stepping per millisecond — every jump
        // has to pull the overflow into the shifted window.
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        let (far, far_waker) = counting_waker();
        wheel.insert(start + Duration::from_millis(600), &far_waker);
        // Idle jump to t=199 ms: nothing due, window shifts.
        wheel.advance(start + Duration::from_millis(199));
        // A later-deadline slot entry must not shadow the overflow entry.
        let (near, near_waker) = counting_waker();
        wheel.insert(start + Duration::from_millis(650), &near_waker);
        assert_eq!(
            wheel.poll_timeout_ms(start + Duration::from_millis(199)),
            Some(402),
            "the overflow entry (due 600→601 ms) must bound the poll timeout"
        );
        wheel.advance(start + Duration::from_millis(620));
        assert_eq!(
            far.0.load(AtomicOrdering::SeqCst),
            1,
            "overflow entry fires on time"
        );
        assert_eq!(near.0.load(AtomicOrdering::SeqCst), 0);
        wheel.advance(start + Duration::from_millis(660));
        assert_eq!(near.0.load(AtomicOrdering::SeqCst), 1);
    }

    #[test]
    fn cancelled_entries_do_not_wake() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        let (fired, waker) = counting_waker();
        let (shared, _) = wheel.insert(start + Duration::from_millis(20), &waker);
        shared.cancel();
        wheel.advance(start + Duration::from_millis(50));
        assert_eq!(fired.0.load(AtomicOrdering::SeqCst), 0);
    }
}
